"""Run one scenario (protocol × workload × environment) and measure it.

Every figure in the paper's evaluation is a set of (throughput, latency)
observations over some configuration sweep; this module produces one
:class:`ExperimentResult` per configuration.  Methodology: closed-loop
clients, a warmup interval, then a measurement window — only completions
inside the window count for throughput, and their latencies feed the
summaries and CDFs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.baseline.naive import BaselineDeployment
from repro.baseline.single_group import SingleGroupDeployment
from repro.bcast.config import CostModel
from repro.core.deployment import ByzCastDeployment
from repro.core.tree import OverlayTree
from repro.metrics.collector import LatencyCollector, ThroughputMeter
from repro.metrics.stats import LatencySummary, summarize
from repro.env import NetworkConfig
from repro.workload.clients import ClosedLoopDriver
from repro.workload.spec import DestinationSampler


@dataclass(frozen=True)
class ClientPlan:
    """One client endpoint of an experiment."""

    name: str
    sampler: DestinationSampler
    site: str = "site0"


@dataclass(frozen=True)
class ExperimentResult:
    """Steady-state measurements of one configuration."""

    protocol: str
    clients: int
    duration: float
    throughput: float
    latency: LatencySummary
    local_latency: LatencySummary
    global_latency: LatencySummary
    samples: Tuple[float, ...]
    local_samples: Tuple[float, ...]
    global_samples: Tuple[float, ...]
    #: high-water mark of retained executed batches across all replicas
    #: (the memory-bound metric; 0 when the deployment exposes no groups)
    max_retained: int = 0

    def row(self) -> str:
        """A printable results row (latencies in milliseconds)."""
        return (
            f"{self.protocol:<10} clients={self.clients:<5} "
            f"tput={self.throughput:>10.1f} m/s  "
            f"lat(mean={self.latency.mean * 1000:.2f}ms "
            f"median={self.latency.median * 1000:.2f}ms "
            f"p95={self.latency.p95 * 1000:.2f}ms "
            f"±{self.latency.ci95 * 1000:.2f}ms)"
        )


def _drive_and_measure(
    deployment,
    make_client: Callable[[ClientPlan], object],
    plans: Sequence[ClientPlan],
    protocol: str,
    warmup: float,
    duration: float,
    max_events: Optional[int],
) -> ExperimentResult:
    collector = LatencyCollector(warmup, warmup + duration)
    local_collector = LatencyCollector(warmup, warmup + duration)
    global_collector = LatencyCollector(warmup, warmup + duration)
    meter = ThroughputMeter(warmup, warmup + duration)
    drivers: List[ClosedLoopDriver] = []
    for plan in plans:
        client = make_client(plan)
        driver = ClosedLoopDriver(
            client=client,
            sampler=plan.sampler,
            rng=deployment.rng.stream(f"client.{plan.name}"),
            collector=collector,
            meter=meter,
            local_collector=local_collector,
            global_collector=global_collector,
        )
        drivers.append(driver)
    deployment.start()
    for driver in drivers:
        driver.start()
    deployment.run(until=warmup + duration, max_events=max_events)
    groups = list(getattr(deployment, "groups", {}).values())
    single = getattr(deployment, "group", None)
    if single is not None and not callable(single):
        groups.append(single)
    max_retained = 0
    for group in groups:
        for replica in group.replicas:
            max_retained = max(max_retained, replica.log.max_retained)
    return ExperimentResult(
        protocol=protocol,
        clients=len(plans),
        duration=duration,
        throughput=meter.throughput(),
        latency=collector.summary(),
        local_latency=local_collector.summary(),
        global_latency=global_collector.summary(),
        samples=tuple(collector.in_window()),
        local_samples=tuple(local_collector.in_window()),
        global_samples=tuple(global_collector.in_window()),
        max_retained=max_retained,
    )


def run_byzcast(
    tree: OverlayTree,
    plans: Sequence[ClientPlan],
    f: int = 1,
    costs: Optional[CostModel] = None,
    network_config: Optional[NetworkConfig] = None,
    sites: Optional[Callable[[str, int], str]] = None,
    warmup: float = 1.0,
    duration: float = 4.0,
    seed: int = 1,
    max_batch: int = 400,
    batch_delay: float = 0.0,
    adaptive_batching: bool = False,
    min_batch: int = 4,
    request_timeout: float = 2.0,
    checkpoint_interval: int = 0,
    max_in_flight: int = 4,
    max_events: Optional[int] = None,
) -> ExperimentResult:
    """Measure ByzCast under the given workload."""
    deployment = ByzCastDeployment(
        tree,
        f=f,
        costs=costs,
        network_config=network_config,
        sites=sites,
        seed=seed,
        max_batch=max_batch,
        batch_delay=batch_delay,
        adaptive_batching=adaptive_batching,
        min_batch=min_batch,
        request_timeout=request_timeout,
        checkpoint_interval=checkpoint_interval,
        max_in_flight=max_in_flight,
    )
    return _drive_and_measure(
        deployment,
        lambda plan: deployment.add_client(plan.name, site=plan.site),
        plans,
        "byzcast",
        warmup,
        duration,
        max_events,
    )


def run_baseline(
    targets: Sequence[str],
    plans: Sequence[ClientPlan],
    f: int = 1,
    costs: Optional[CostModel] = None,
    network_config: Optional[NetworkConfig] = None,
    sites: Optional[Callable[[str, int], str]] = None,
    warmup: float = 1.0,
    duration: float = 4.0,
    seed: int = 1,
    max_batch: int = 400,
    batch_delay: float = 0.0,
    adaptive_batching: bool = False,
    min_batch: int = 4,
    request_timeout: float = 2.0,
    max_events: Optional[int] = None,
) -> ExperimentResult:
    """Measure the non-genuine Baseline protocol."""
    deployment = BaselineDeployment(
        list(targets),
        f=f,
        costs=costs,
        network_config=network_config,
        sites=sites,
        seed=seed,
        max_batch=max_batch,
        batch_delay=batch_delay,
        adaptive_batching=adaptive_batching,
        min_batch=min_batch,
        request_timeout=request_timeout,
    )
    return _drive_and_measure(
        deployment,
        lambda plan: deployment.add_client(plan.name, site=plan.site),
        plans,
        "baseline",
        warmup,
        duration,
        max_events,
    )


def run_bftsmart(
    plans: Sequence[ClientPlan],
    f: int = 1,
    costs: Optional[CostModel] = None,
    network_config: Optional[NetworkConfig] = None,
    sites: Optional[Sequence[str]] = None,
    warmup: float = 1.0,
    duration: float = 4.0,
    seed: int = 1,
    max_batch: int = 400,
    batch_delay: float = 0.0,
    adaptive_batching: bool = False,
    min_batch: int = 4,
    request_timeout: float = 2.0,
    max_events: Optional[int] = None,
) -> ExperimentResult:
    """Measure plain BFT-SMaRt (one group orders everything)."""
    deployment = SingleGroupDeployment(
        f=f,
        costs=costs,
        network_config=network_config,
        sites=list(sites) if sites is not None else None,
        seed=seed,
        max_batch=max_batch,
        batch_delay=batch_delay,
        adaptive_batching=adaptive_batching,
        min_batch=min_batch,
        request_timeout=request_timeout,
    )
    return _drive_and_measure(
        deployment,
        lambda plan: deployment.add_client(plan.name, site=plan.site),
        plans,
        "bft-smart",
        warmup,
        duration,
        max_events,
    )
