"""Materialize a :class:`~repro.scenario.spec.ScenarioSpec`.

This is the **one** tree/deployment/driver construction path of the repo:
``repro.perf`` cells, the ``repro.runtime.chaos`` soak, the CLI and the
examples all call into these builders instead of wiring deployments by
hand.  Everything is derived from the spec plus its seed, so a scenario on
the sim backend is bit-identical across runs and hosts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace as dataclass_replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.bcast.config import CostModel
from repro.core.deployment import ByzCastDeployment, SiteAssigner
from repro.core.tree import OverlayTree
from repro.env import NetworkConfig, Runtime, make_runtime
from repro.errors import ConfigurationError
from repro.metrics.collector import LatencyCollector, ThroughputMeter
from repro.metrics.stats import LatencySummary
from repro.runtime.environments import (
    bench_costs,
    calibrated_costs,
    lan_network_config,
    soak_costs,
    wan_network_config,
    wan_site_assigner,
)
from repro.scenario.spec import ScenarioSpec, TopologySpec, WorkloadSpec
from repro.workload import spec as workloads
from repro.workload.clients import (
    BurstOpenLoopDriver,
    ClosedLoopDriver,
    DiurnalDriver,
    FlashCrowdDriver,
    OpenLoopDriver,
)

#: cost-model factories by ``protocol.costs`` name
_COST_MODELS: Dict[str, Callable[[], CostModel]] = {
    "calibrated": calibrated_costs,
    "bench": bench_costs,
    "soak": soak_costs,
}


def build_tree(topology: TopologySpec) -> OverlayTree:
    """The overlay tree of a topology spec."""
    targets = list(topology.target_names())
    if topology.layout == "two_level":
        return OverlayTree.two_level(targets)
    if topology.layout == "paper":
        return OverlayTree.paper_tree()
    if topology.layout == "balanced":
        return OverlayTree.balanced(targets, fanout=topology.fanout)
    raise ConfigurationError(f"unknown tree layout {topology.layout!r}")


def build_network_config(topology: TopologySpec) -> Optional[NetworkConfig]:
    if topology.latency == "default":
        return None
    if topology.latency == "lan":
        return lan_network_config()
    if topology.latency == "wan":
        return wan_network_config()
    raise ConfigurationError(f"unknown latency model {topology.latency!r}")


def build_site_assigner(topology: TopologySpec) -> Optional[SiteAssigner]:
    if topology.sites == "single":
        return None
    if topology.sites == "wan_spread":
        return wan_site_assigner
    raise ConfigurationError(f"unknown site model {topology.sites!r}")


def build_costs(spec: ScenarioSpec) -> CostModel:
    try:
        return _COST_MODELS[spec.protocol.costs]()
    except KeyError:
        raise ConfigurationError(
            f"unknown cost model {spec.protocol.costs!r}; "
            f"choose one of {sorted(_COST_MODELS)}") from None


def scenario_membership(spec: ScenarioSpec) -> Dict[str, Tuple[str, ...]]:
    """Group id → replica endpoint names, derived from the spec alone.

    Matches the deployment's ``BroadcastConfig.replicas`` naming, so fault
    schedules can be generated *before* the deployment exists (Byzantine
    assignments are construction-time).
    """
    count = 3 * spec.topology.f + 1
    return {
        gid: tuple(f"{gid}/r{i}" for i in range(count))
        for gid in build_tree(spec.topology).nodes
    }


def scenario_fault_profile(spec: ScenarioSpec):
    """The nemesis intensity profile of a spec, churn counts folded in.

    ``faults.joins`` / ``leaves`` / ``scale_cycles`` add membership-churn
    ops *on top of* the named intensity profile, so e.g. ``intensity:
    "medium", joins: 2`` soaks the usual medium chaos plus two join swaps.
    """
    from repro.faults.nemesis import PROFILES

    profile = PROFILES[spec.faults.intensity]
    faults = spec.faults
    if faults.joins or faults.leaves or faults.scale_cycles:
        profile = dataclass_replace(
            profile,
            join_ops=profile.join_ops + faults.joins,
            leave_ops=profile.leave_ops + faults.leaves,
            scale_cycles=profile.scale_cycles + faults.scale_cycles,
        )
    return profile


def build_deployment(
    spec: ScenarioSpec,
    runtime: Optional[Runtime] = None,
    replica_classes: Optional[Dict] = None,
    app_overrides: Optional[Dict] = None,
    trace_capacity: int = 0,
    kv=None,
) -> ByzCastDeployment:
    """The deployment of a scenario (tree, groups, network, app wiring).

    ``replica_classes`` / ``app_overrides`` compose nemesis Byzantine
    assignments on top of the scenario's own application: when the spec
    names ``app: "sharded_kv"``, every replica runs the store except the
    victims the overrides claim.  Pass a prepared :class:`ShardedKVApp`
    as ``kv`` to keep a handle on its machines; otherwise one is created
    on demand (reachable via ``deployment.kv``).
    """
    tree = build_tree(spec.topology)
    proto = spec.protocol
    overrides = dict(app_overrides or {})
    if spec.app == "sharded_kv":
        from repro.apps.sharded_kv import ShardedKVApp

        if kv is None:
            kv = ShardedKVApp(tree, f=spec.topology.f,
                              keys=spec.workload.keys)
        merged = {gid: dict(factories)
                  for gid, factories in kv.app_overrides().items()}
        for gid, factories in overrides.items():
            merged.setdefault(gid, {}).update(factories)
        overrides = merged
    if runtime is None and spec.backend != "sim":
        runtime = make_runtime(spec.backend, seed=spec.seed,
                               wire=proto.resolved_wire(spec.backend))
    deployment = ByzCastDeployment(
        tree,
        f=spec.topology.f,
        costs=build_costs(spec),
        network_config=build_network_config(spec.topology),
        sites=build_site_assigner(spec.topology),
        seed=spec.seed,
        replica_classes=replica_classes,
        app_overrides=overrides or None,
        trace_capacity=trace_capacity,
        max_batch=proto.max_batch,
        batch_delay=proto.batch_delay,
        adaptive_batching=proto.adaptive_batching,
        min_batch=proto.min_batch,
        request_timeout=proto.request_timeout,
        checkpoint_interval=proto.checkpoint_interval,
        max_in_flight=proto.max_in_flight,
        runtime=runtime,
    )
    # the relay proxies' retransmit pace follows the clients' (the soak
    # harness runs both at sub-second timeouts)
    for gid in deployment.groups:
        for app in deployment.apps(gid):
            app.relay_retransmit_timeout = proto.retransmit_timeout
    deployment.kv = kv
    return deployment


def build_destination_sampler(
    workload: WorkloadSpec,
    targets,
    clock: Optional[Callable[[], float]] = None,
) -> workloads.DestinationSampler:
    """The destination distribution of a workload spec over ``targets``."""
    targets = list(targets)
    if workload.destinations == "local":
        return workloads.local_uniform(targets)
    if workload.destinations == "global":
        return workloads.uniform_pairs(targets)
    if workload.destinations == "mixed":
        return workloads.mixed_ratio(
            workloads.local_uniform(targets),
            workloads.uniform_pairs(targets),
            workload.local_parts, workload.global_parts,
        )
    if workload.destinations == "zipfian":
        return workloads.mixed_ratio(
            workloads.zipfian_local(targets, s=workload.zipf_s),
            workloads.zipfian_pairs(targets, s=workload.zipf_s),
            workload.local_parts, workload.global_parts,
        )
    if workload.destinations == "hotspot":
        return workloads.mixed_ratio(
            workloads.hotspot_migration(
                targets, hot_weight=workload.hotspot_weight,
                period=workload.hotspot_period, clock=clock,
            ),
            workloads.uniform_pairs(targets),
            workload.local_parts, workload.global_parts,
        )
    if workload.destinations == "hotpairs":
        return workloads.hotspot_pairs(
            targets, hot_weight=workload.hotspot_weight,
            period=workload.hotspot_period, s=workload.zipf_s, clock=clock,
        )
    raise ConfigurationError(
        f"unknown destination distribution {workload.destinations!r}")


def build_key_sampler(workload: WorkloadSpec) -> workloads.KeySampler:
    """The key distribution of a sharded-KV workload spec."""
    if workload.key_dist == "uniform":
        return workloads.uniform_keys(workload.keys)
    if workload.key_dist == "zipfian":
        return workloads.zipfian_keys(workload.keys, s=workload.zipf_s)
    if workload.key_dist == "hotspot":
        return workloads.hotspot_keys(workload.keys)
    raise ConfigurationError(
        f"unknown key distribution {workload.key_dist!r}")


def build_drivers(
    spec: ScenarioSpec,
    deployment: ByzCastDeployment,
    collector: Optional[LatencyCollector] = None,
    meter: Optional[ThroughputMeter] = None,
    local_collector: Optional[LatencyCollector] = None,
    global_collector: Optional[LatencyCollector] = None,
) -> List:
    """One driver per client of the workload, wired to the deployment."""
    workload = spec.workload
    targets = sorted(deployment.tree.targets)
    clock = lambda: deployment.loop.now  # noqa: E731 - tiny adaptor
    op_sampler = None
    sampler = None
    read_sampler = None
    if spec.app == "sharded_kv":
        op_sampler = deployment.kv.op_sampler(
            build_key_sampler(workload),
            cross_ratio=workload.kv_cross_ratio,
            read_ratio=workload.kv_read_ratio,
        )
        if workload.read_ratio > 0:
            read_sampler = deployment.kv.read_sampler(
                build_key_sampler(workload))
    else:
        sampler = build_destination_sampler(workload, targets, clock=clock)
        if workload.read_ratio > 0:
            # opaque workloads probe the default application read
            # (delivery counts) on a uniformly random target group
            local = workloads.local_uniform(targets)

            def read_sampler(rng, local=local):
                return local(rng), ("peek",)
    stop_after = spec.horizon
    drivers = []
    client_sites: Optional[Tuple[str, ...]] = None
    if spec.topology.sites == "wan_spread":
        # WAN geometry: clients live in the regions too (round-robin), so
        # their first hop crosses the Table I latency matrix like every
        # replica-to-replica link does
        from repro.runtime.environments import REGIONS

        client_sites = REGIONS
    for index in range(workload.clients):
        name = f"{workload.client_prefix}{index}"
        client = deployment.add_client(
            name,
            site=(client_sites[index % len(client_sites)]
                  if client_sites else "site0"),
            retransmit_timeout=spec.protocol.retransmit_timeout,
            read_timeout=spec.protocol.read_timeout)
        common = dict(
            sampler=sampler,
            rng=deployment.rng.stream(f"client.{name}"),
            collector=collector,
            meter=meter,
            local_collector=local_collector,
            global_collector=global_collector,
            stop_after=stop_after,
            op_sampler=op_sampler,
            read_ratio=workload.read_ratio,
            read_mode=workload.read_mode,
            read_sampler=read_sampler,
        )
        if workload.loop == "closed":
            drivers.append(ClosedLoopDriver(
                client, think_time=workload.think_time, **common))
        elif workload.loop == "open":
            drivers.append(OpenLoopDriver(
                client, rate=workload.rate, **common))
        elif workload.loop == "burst":
            drivers.append(BurstOpenLoopDriver(
                client, rate=workload.rate, burst_on=workload.burst_on,
                burst_off=workload.burst_off, **common))
        elif workload.loop == "flash":
            drivers.append(FlashCrowdDriver(
                client, rate=workload.rate, flash_at=workload.flash_at,
                flash_factor=workload.flash_factor,
                flash_width=workload.flash_width, **common))
        elif workload.loop == "diurnal":
            drivers.append(DiurnalDriver(
                client, rate=workload.rate, period=workload.diurnal_period,
                amplitude=workload.diurnal_amplitude, **common))
        else:
            raise ConfigurationError(f"unknown loop {workload.loop!r}")
    return drivers


@dataclass(frozen=True)
class ScenarioResult:
    """Measurements of one scenario run."""

    name: str
    backend: str
    protocol: str
    clients: int
    duration: float
    throughput: float
    latency: LatencySummary
    local_latency: LatencySummary
    global_latency: LatencySummary
    sent: int
    completed: int
    #: wall-clock seconds the run took on the host (informational)
    wall_seconds: float
    #: high-water mark of retained executed batches across all replicas
    max_retained: int = 0
    #: adaptive-tree runs (docs/TREES.md): mean per-message hop count over
    #: the collector's window (post-switch traffic after an adaptation)
    #: and the number of ordered tree switches the planner committed
    mean_hops: float = 0.0
    tree_switches: int = 0
    #: Monitor counter snapshot — the determinism fingerprint on sim
    counters: Dict[str, int] = field(default_factory=dict)
    #: the run's :class:`~repro.apps.sharded_kv.ShardedKVApp` handle
    #: (``app: "sharded_kv"`` scenarios only) for post-run inspection
    kv: Optional[object] = None

    def row(self) -> str:
        return (
            f"{self.name:<28} clients={self.clients:<5} "
            f"tput={self.throughput:>10.1f} m/s  "
            f"p95={self.latency.p95 * 1000:8.2f} ms "
            f"({self.wall_seconds:.1f}s wall)"
        )


def run_scenario(
    spec: ScenarioSpec,
    runtime: Optional[Runtime] = None,
    max_events: Optional[int] = None,
) -> ScenarioResult:
    """Build, run and measure one scenario.

    The measurement methodology matches the paper's harness: a warmup
    interval, then a measurement window of ``workload.duration`` seconds —
    only completions inside the window count.  When the spec carries a
    :class:`~repro.scenario.spec.FaultSpec`, the nemesis schedule is
    expanded from the fault seed and armed before the run (measurement
    under faults; the invariant-checked post-mortem lives in
    ``repro.runtime.chaos``).
    """
    spec.check()
    workload = spec.workload
    window = (workload.warmup, spec.horizon)
    collector = LatencyCollector(*window)
    local_collector = LatencyCollector(*window)
    global_collector = LatencyCollector(*window)
    meter = ThroughputMeter(*window)

    started = time.perf_counter()
    owns_runtime = runtime is None
    chaos = None
    schedule = None
    if spec.faults is not None:
        # Chaos must wrap the transport before any actor registers, and
        # Byzantine assignments are construction-time — so expand the
        # schedule from the spec's deterministic membership first.
        from repro.env.chaos import ChaosConfig, install_chaos
        from repro.faults.nemesis import NemesisSchedule

        if runtime is None:
            runtime = make_runtime(
                spec.backend,
                **({"network_config": build_network_config(spec.topology),
                    "seed": spec.seed}
                   if spec.backend == "sim"
                   else {"seed": spec.seed,
                         "wire": spec.protocol.resolved_wire(spec.backend)}),
            )
        chaos = install_chaos(runtime, ChaosConfig())
        schedule = NemesisSchedule.generate(
            groups=scenario_membership(spec),
            seed=spec.fault_seed(),
            duration=spec.fault_duration(),
            profile=scenario_fault_profile(spec),
            f=spec.topology.f,
        )
    deployment = build_deployment(
        spec, runtime=runtime,
        replica_classes=schedule.replica_classes if schedule else None,
        app_overrides=schedule.app_overrides if schedule else None,
    )
    try:
        if schedule is not None:
            from repro.faults.nemesis import CHURN_KINDS

            elasticity = None
            if CHURN_KINDS & {op.kind for op in schedule.ops}:
                from repro.faults.elasticity import elasticity_controller

                elasticity = elasticity_controller(deployment)
            schedule.apply(deployment, chaos=chaos, elasticity=elasticity)
        drivers = build_drivers(
            spec, deployment,
            collector=collector, meter=meter,
            local_collector=local_collector, global_collector=global_collector,
        )
        traffic = None
        planner = None
        if spec.protocol.adaptive_tree != "off":
            # observe: every client notes (destination set, hop count) into
            # one shared ring; on: the planner closes the loop by driving
            # ordered tree switches through the elasticity controller
            from repro.optimizer.traffic import TrafficCollector

            traffic = TrafficCollector()
            traffic.bind_clock(lambda: deployment.loop.now)
            for client in deployment.clients:
                client.traffic = traffic
            if spec.protocol.adaptive_tree == "on":
                from repro.faults.elasticity import elasticity_controller
                from repro.optimizer.planner import TreePlanner

                planner = TreePlanner(
                    elasticity_controller(deployment), traffic,
                    interval=spec.protocol.adapt_interval,
                    min_samples=spec.protocol.adapt_min_samples,
                    hysteresis=spec.protocol.adapt_hysteresis,
                    cooldown=spec.protocol.adapt_cooldown,
                ).start()
        deployment.start()
        for driver in drivers:
            driver.start()
        deployment.run(until=spec.horizon, max_events=max_events)
        for driver in drivers:
            driver.stop()
        if planner is not None:
            planner.stop()

        max_retained = 0
        for group in deployment.groups.values():
            for replica in group.replicas:
                max_retained = max(max_retained, replica.log.max_retained)
        wall = time.perf_counter() - started
        return ScenarioResult(
            name=spec.name,
            backend=spec.backend,
            protocol="byzcast",
            clients=workload.clients,
            duration=workload.duration,
            throughput=meter.throughput(),
            latency=collector.summary(),
            local_latency=local_collector.summary(),
            global_latency=global_collector.summary(),
            sent=sum(d.sent for d in drivers),
            completed=sum(d.completed for d in drivers),
            wall_seconds=wall,
            max_retained=max_retained,
            mean_hops=(traffic.mean_hops(since=workload.warmup)
                       if traffic is not None else 0.0),
            tree_switches=planner.switches if planner is not None else 0,
            counters=deployment.monitor.snapshot(),
            kv=deployment.kv,
        )
    finally:
        if owns_runtime:
            deployment.runtime.close()
