"""Declarative scenario specs: one topology + workload model for everything.

A :class:`ScenarioSpec` describes a complete run — the overlay topology
(group count, tree layout, latency model), the workload (client count,
closed- vs open-loop arrival process, destination and key distributions,
duration), protocol tuning (batching, checkpointing, pipeline depth), the
application (plain ByzCast or the sharded KV store) and an optional
nemesis fault plan — as plain data that round-trips through JSON.

Every harness in the repo builds from the same spec:

* ``python -m repro bench`` — each :class:`~repro.perf.runner.BenchCell`
  is a thin view over a spec (:meth:`BenchCell.to_scenario`);
* ``python -m repro chaos`` — the soak derives its deployment from a spec
  (:meth:`~repro.runtime.chaos.SoakConfig.to_scenario`);
* ``ByzCastDeployment.from_scenario`` — direct programmatic use;
* ``python -m repro scenario validate|run`` — lint or execute a spec file.

See ``docs/SCENARIOS.md`` for the schema and examples.
"""

from repro.scenario.spec import (
    SCENARIO_SCHEMA_VERSION,
    FaultSpec,
    ProtocolSpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.scenario.build import (
    ScenarioResult,
    build_deployment,
    build_destination_sampler,
    build_tree,
    run_scenario,
)

__all__ = [
    "SCENARIO_SCHEMA_VERSION",
    "FaultSpec",
    "ProtocolSpec",
    "ScenarioResult",
    "ScenarioSpec",
    "TopologySpec",
    "WorkloadSpec",
    "build_deployment",
    "build_destination_sampler",
    "build_tree",
    "run_scenario",
]
