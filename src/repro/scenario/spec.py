"""The scenario schema: frozen dataclasses + dict/JSON round-trip + linting.

Everything here is plain data.  Construction of trees, deployments and
drivers lives in :mod:`repro.scenario.build`; this module only describes
*what* to build, validates it, and serializes it losslessly —
``ScenarioSpec.from_dict(spec.to_dict()) == spec`` holds for every valid
spec (pinned by a hypothesis property test).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

#: bump when the serialized layout changes incompatibly
SCENARIO_SCHEMA_VERSION = 5
#: schema versions this build can read (older docs parse as long as they
#: do not use newer vocabulary; ``to_dict`` always writes the current
#: version)
SUPPORTED_SCHEMAS = (1, 2, 3, 4, 5)

#: enumerated axis values (also the vocabulary ``validate`` lints against)
LAYOUTS = ("two_level", "paper", "balanced")
LATENCIES = ("default", "lan", "wan")
SITES = ("single", "wan_spread")
LOOPS = ("closed", "open", "burst", "flash", "diurnal")
DESTINATIONS = ("local", "global", "mixed", "zipfian", "hotspot", "hotpairs")
KEY_DISTS = ("uniform", "zipfian", "hotspot")
COSTS = ("calibrated", "bench", "soak")
APPS = ("none", "sharded_kv")
BACKENDS = ("sim", "rt")
INTENSITIES = ("light", "medium", "heavy", "churn")
READ_MODES = ("ordered", "optimistic", "snapshot")
WIRES = ("auto", "json", "binary")
ADAPTIVE_TREE_MODES = ("off", "observe", "on")

#: vocabulary introduced by schema 2 — rejected (with a pointed error) in
#: documents that still declare ``schema: 1``
V2_KEYS: Dict[str, Tuple[str, ...]] = {
    "workload": ("flash_at", "flash_factor", "flash_width",
                 "diurnal_period", "diurnal_amplitude"),
    "faults": ("joins", "leaves", "scale_cycles"),
}
V2_VALUES: Dict[Tuple[str, str], Tuple[str, ...]] = {
    ("workload", "loop"): ("flash", "diurnal"),
    ("faults", "intensity"): ("churn",),
}

#: vocabulary introduced by schema 3 (the read tier, docs/READS.md) —
#: rejected in documents declaring an older schema
V3_KEYS: Dict[str, Tuple[str, ...]] = {
    "workload": ("read_ratio", "read_mode"),
    "protocol": ("read_timeout",),
}

#: vocabulary introduced by schema 4 (the wire-codec knob, docs/WIRE.md) —
#: rejected in documents declaring an older schema
V4_KEYS: Dict[str, Tuple[str, ...]] = {
    "protocol": ("wire",),
}

#: vocabulary introduced by schema 5 (workload-adaptive overlay trees,
#: docs/TREES.md) — rejected in documents declaring an older schema
V5_KEYS: Dict[str, Tuple[str, ...]] = {
    "protocol": ("adaptive_tree", "adapt_interval", "adapt_min_samples",
                 "adapt_hysteresis", "adapt_cooldown"),
}
V5_VALUES: Dict[Tuple[str, str], Tuple[str, ...]] = {
    ("workload", "destinations"): ("hotpairs",),
    ("protocol", "wire"): ("auto",),
}


def _plain(value: Any) -> Any:
    """Dataclass field value -> JSON-friendly value (tuples become lists)."""
    if isinstance(value, tuple):
        return list(value)
    return value


def _section_to_dict(section: Any) -> Dict[str, Any]:
    return {f.name: _plain(getattr(section, f.name)) for f in fields(section)}


def _reject_v2_usage(raw: Dict[str, Any]) -> None:
    """Refuse v2 vocabulary in a document that declares ``schema: 1``."""
    for section, keys in V2_KEYS.items():
        body = raw.get(section)
        if not isinstance(body, dict):
            continue
        used = sorted(set(body) & set(keys))
        if used:
            raise ConfigurationError(
                f"{section} key(s) {used} need scenario schema 2; "
                f'set "schema": 2 in the document')
    for (section, key), values in V2_VALUES.items():
        body = raw.get(section)
        if isinstance(body, dict) and body.get(key) in values:
            raise ConfigurationError(
                f"{section}.{key} = {body[key]!r} needs scenario schema 2; "
                f'set "schema": 2 in the document')


def _reject_v3_usage(raw: Dict[str, Any]) -> None:
    """Refuse v3 (read-tier) vocabulary in a pre-3 document."""
    for section, keys in V3_KEYS.items():
        body = raw.get(section)
        if not isinstance(body, dict):
            continue
        used = sorted(set(body) & set(keys))
        if used:
            raise ConfigurationError(
                f"{section} key(s) {used} need scenario schema 3; "
                f'set "schema": 3 in the document')


def _reject_v4_usage(raw: Dict[str, Any]) -> None:
    """Refuse v4 (wire-codec) vocabulary in a pre-4 document."""
    for section, keys in V4_KEYS.items():
        body = raw.get(section)
        if not isinstance(body, dict):
            continue
        used = sorted(set(body) & set(keys))
        if used:
            raise ConfigurationError(
                f"{section} key(s) {used} need scenario schema 4; "
                f'set "schema": 4 in the document')


def _reject_v5_usage(raw: Dict[str, Any]) -> None:
    """Refuse v5 (adaptive-tree) vocabulary in a pre-5 document."""
    for section, keys in V5_KEYS.items():
        body = raw.get(section)
        if not isinstance(body, dict):
            continue
        used = sorted(set(body) & set(keys))
        if used:
            raise ConfigurationError(
                f"{section} key(s) {used} need scenario schema 5; "
                f'set "schema": 5 in the document')
    for (section, key), values in V5_VALUES.items():
        body = raw.get(section)
        if isinstance(body, dict) and body.get(key) in values:
            raise ConfigurationError(
                f"{section}.{key} = {body[key]!r} needs scenario schema 5; "
                f'set "schema": 5 in the document')


def _section_from_dict(cls, raw: Dict[str, Any], where: str):
    """Build a section dataclass, rejecting unknown keys loudly."""
    if not isinstance(raw, dict):
        raise ConfigurationError(f"{where} must be an object, got {type(raw).__name__}")
    known = {f.name: f for f in fields(cls)}
    unknown = sorted(set(raw) - set(known))
    if unknown:
        raise ConfigurationError(
            f"unknown key(s) {unknown} in {where}; known: {sorted(known)}"
        )
    kwargs = {}
    for name, value in raw.items():
        if isinstance(value, list):
            value = tuple(value)
        kwargs[name] = value
    return cls(**kwargs)


@dataclass(frozen=True)
class TopologySpec:
    """Groups, overlay-tree layout and network geometry."""

    #: number of target groups (ignored when ``names`` is given)
    groups: int = 2
    #: explicit target-group names; empty = ``{prefix}1..{prefix}N``
    names: Tuple[str, ...] = ()
    prefix: str = "g"
    #: ``two_level`` | ``paper`` (the Fig. 1(a) tree) | ``balanced``
    layout: str = "two_level"
    #: targets/auxiliaries per inner node of a ``balanced`` tree
    fanout: int = 8
    #: per-group fault threshold (3f+1 replicas per group)
    f: int = 1
    #: ``default`` (uniform sim latency) | ``lan`` | ``wan`` (Table I)
    latency: str = "default"
    #: ``single`` site or ``wan_spread`` (§V-B3 one replica per region)
    sites: str = "single"

    def target_names(self) -> Tuple[str, ...]:
        if self.names:
            return tuple(self.names)
        return tuple(f"{self.prefix}{i + 1}" for i in range(self.groups))

    def lint(self) -> List[str]:
        problems = []
        if self.layout not in LAYOUTS:
            problems.append(
                f"topology.layout {self.layout!r} not in {list(LAYOUTS)}")
        if self.latency not in LATENCIES:
            problems.append(
                f"topology.latency {self.latency!r} not in {list(LATENCIES)}")
        if self.sites not in SITES:
            problems.append(
                f"topology.sites {self.sites!r} not in {list(SITES)}")
        if not self.names and self.groups < 1:
            problems.append("topology.groups must be >= 1")
        if self.names and len(set(self.names)) != len(self.names):
            problems.append("topology.names contains duplicates")
        if self.layout == "paper" and self.target_names() != ("g1", "g2", "g3", "g4"):
            problems.append(
                "topology.layout 'paper' is the fixed Fig. 1(a) tree over "
                "g1..g4; leave names empty and set groups=4, prefix='g'")
        if self.layout == "balanced" and self.fanout < 2:
            problems.append("topology.fanout must be >= 2")
        if self.f < 1:
            problems.append("topology.f must be >= 1")
        return problems


@dataclass(frozen=True)
class WorkloadSpec:
    """Clients, arrival process, destination + key distributions, timing."""

    clients: int = 8
    #: client endpoint names are ``{client_prefix}{index}``
    client_prefix: str = "c"
    #: ``closed`` (paper §IV) | ``open`` (Poisson) | ``burst`` (on/off Poisson)
    loop: str = "closed"
    #: per-client arrival rate in msgs/s (open & burst loops)
    rate: float = 100.0
    #: burst loop: seconds of the on-phase / off-phase per cycle
    burst_on: float = 0.5
    burst_off: float = 0.5
    #: closed loop: seconds between a completion and the next send
    think_time: float = 0.0
    #: ``local`` | ``global`` | ``mixed`` | ``zipfian`` | ``hotspot``
    destinations: str = "mixed"
    #: zipf exponent for ``zipfian`` destinations / keys
    zipf_s: float = 1.0
    #: local:global ratio of the mixed-style distributions
    local_parts: int = 10
    global_parts: int = 1
    #: hotspot destinations: probability mass on the hot group and the
    #: dwell (seconds of virtual time) before the hot spot migrates
    hotspot_weight: float = 0.8
    hotspot_period: float = 1.0
    #: flash loop: a Poisson base rate that spikes to ``rate *
    #: flash_factor`` during ``[flash_at, flash_at + flash_width)``
    #: (times relative to the run start, i.e. warmup-inclusive)
    flash_at: float = 1.0
    flash_factor: float = 8.0
    flash_width: float = 0.5
    #: diurnal loop: the rate swings sinusoidally between
    #: ``rate * (1 - amplitude)`` and ``rate * (1 + amplitude)``
    #: with the given period (a compressed day/night load shift)
    diurnal_period: float = 2.0
    diurnal_amplitude: float = 0.8
    warmup: float = 1.0
    duration: float = 4.0
    #: sharded-KV workloads only: key-space size and key distribution
    keys: int = 64
    key_dist: str = "uniform"
    #: fraction of KV ops that are cross-shard transfers / reads
    kv_cross_ratio: float = 0.1
    kv_read_ratio: float = 0.2
    #: read-*tier* axis (schema 3, docs/READS.md): fraction of operations
    #: issued as reads, and how they are served — ``ordered`` routes them
    #: through the full multicast (the comparison baseline), ``optimistic``
    #: through the unordered f+1 fast path, ``snapshot`` from the last
    #: checkpoint.  Orthogonal to ``kv_read_ratio`` (which mixes ordered
    #: gets into the write stream).
    read_ratio: float = 0.0
    read_mode: str = "ordered"

    def lint(self, app: str = "none") -> List[str]:
        problems = []
        if self.clients < 1:
            problems.append("workload.clients must be >= 1")
        if self.loop not in LOOPS:
            problems.append(f"workload.loop {self.loop!r} not in {list(LOOPS)}")
        if self.loop in ("open", "burst", "flash", "diurnal") and self.rate <= 0:
            problems.append("workload.rate must be positive for open-loop "
                            "arrival shapes")
        if self.loop == "burst" and (self.burst_on <= 0 or self.burst_off < 0):
            problems.append("workload.burst_on must be > 0 and burst_off >= 0")
        if self.loop == "flash":
            if self.flash_factor < 1.0:
                problems.append("workload.flash_factor must be >= 1")
            if self.flash_width <= 0:
                problems.append("workload.flash_width must be positive")
            if self.flash_at < 0:
                problems.append("workload.flash_at must be >= 0")
        if self.loop == "diurnal":
            if self.diurnal_period <= 0:
                problems.append("workload.diurnal_period must be positive")
            if not 0.0 <= self.diurnal_amplitude < 1.0:
                problems.append("workload.diurnal_amplitude must be in [0, 1)")
        if self.destinations not in DESTINATIONS:
            problems.append(
                f"workload.destinations {self.destinations!r} "
                f"not in {list(DESTINATIONS)}")
        if self.zipf_s < 0:
            problems.append("workload.zipf_s must be non-negative")
        if self.local_parts < 0 or self.global_parts < 0 \
                or self.local_parts + self.global_parts == 0:
            problems.append("workload local/global parts must be non-negative "
                            "and not both zero")
        if not 0.0 < self.hotspot_weight <= 1.0:
            problems.append("workload.hotspot_weight must be in (0, 1]")
        if self.hotspot_period <= 0:
            problems.append("workload.hotspot_period must be positive")
        if self.warmup < 0 or self.duration <= 0:
            problems.append("workload.warmup must be >= 0 and duration > 0")
        if self.think_time < 0:
            problems.append("workload.think_time must be >= 0")
        if not 0.0 <= self.read_ratio <= 1.0:
            problems.append("workload.read_ratio must be in [0, 1]")
        if self.read_mode not in READ_MODES:
            problems.append(
                f"workload.read_mode {self.read_mode!r} not in {list(READ_MODES)}")
        if app == "sharded_kv":
            if self.keys < 1:
                problems.append("workload.keys must be >= 1 for sharded_kv")
            if self.key_dist not in KEY_DISTS:
                problems.append(
                    f"workload.key_dist {self.key_dist!r} not in {list(KEY_DISTS)}")
            if not 0.0 <= self.kv_cross_ratio <= 1.0 \
                    or not 0.0 <= self.kv_read_ratio <= 1.0:
                problems.append("workload.kv_cross_ratio and kv_read_ratio "
                                "must be in [0, 1]")
            if self.kv_cross_ratio + self.kv_read_ratio > 1.0:
                problems.append("workload.kv_cross_ratio + kv_read_ratio "
                                "must not exceed 1")
        return problems


@dataclass(frozen=True)
class ProtocolSpec:
    """Broadcast-engine tuning shared by every group of the deployment."""

    max_batch: int = 400
    batch_delay: float = 0.0
    adaptive_batching: bool = False
    min_batch: int = 4
    request_timeout: float = 2.0
    retransmit_timeout: float = 4.0
    #: executed cids between application checkpoints (0 = off)
    checkpoint_interval: int = 0
    #: consensus pipeline depth (docs/PIPELINE.md)
    max_in_flight: int = 1
    #: unordered-read probe timeout before retry/fallback (docs/READS.md)
    read_timeout: float = 1.0
    #: CPU cost model: ``calibrated`` (paper scale) | ``bench``
    #: (×BENCH_SCALE, what the perf matrix uses) | ``soak`` (cheap shape
    #: for chaos soaks)
    costs: str = "calibrated"
    #: wire codec of the rt backend's TCP transport (schema 4,
    #: docs/WIRE.md): ``auto`` (the default since schema 5: ``binary`` on
    #: rt, ``json`` on sim — resolved by :meth:`resolved_wire`) | ``json``
    #: (tagged JSON, the strict-back-compat choice) | ``binary``
    #: (struct-packed fast path).  Ignored by the sim backend, which
    #: passes message objects by reference.
    wire: str = "auto"
    #: workload-adaptive overlay trees (schema 5, docs/TREES.md):
    #: ``off`` (static tree, zero observation overhead) | ``observe``
    #: (collect traffic + publish ``tree.hops``/``tree.skew`` gauges, never
    #: switch) | ``on`` (full observe → decide → switch loop)
    adaptive_tree: str = "off"
    #: seconds between planner decisions (deployment virtual time)
    adapt_interval: float = 1.0
    #: minimum observed submits before the planner will re-plan
    adapt_min_samples: int = 48
    #: required cost ratio current/candidate before switching (>= 1.0;
    #: predicted savings below this never trigger a switch)
    adapt_hysteresis: float = 1.2
    #: seconds after a switch during which the planner holds off
    adapt_cooldown: float = 2.0

    def resolved_wire(self, backend: str) -> str:
        """The concrete codec ``auto`` stands for on the given backend."""
        if self.wire == "auto":
            return "binary" if backend == "rt" else "json"
        return self.wire

    def lint(self) -> List[str]:
        problems = []
        if self.max_batch < 1 or self.min_batch < 1:
            problems.append("protocol.max_batch and min_batch must be >= 1")
        if self.batch_delay < 0:
            problems.append("protocol.batch_delay must be >= 0")
        if self.request_timeout <= 0:
            problems.append("protocol.request_timeout must be positive")
        if self.checkpoint_interval < 0:
            problems.append("protocol.checkpoint_interval must be >= 0")
        if self.max_in_flight < 1:
            problems.append("protocol.max_in_flight must be >= 1")
        if self.read_timeout <= 0:
            problems.append("protocol.read_timeout must be positive")
        if self.costs not in COSTS:
            problems.append(f"protocol.costs {self.costs!r} not in {list(COSTS)}")
        if self.wire not in WIRES:
            problems.append(f"protocol.wire {self.wire!r} not in {list(WIRES)}")
        if self.adaptive_tree not in ADAPTIVE_TREE_MODES:
            problems.append(
                f"protocol.adaptive_tree {self.adaptive_tree!r} "
                f"not in {list(ADAPTIVE_TREE_MODES)}")
        if self.adapt_interval <= 0:
            problems.append("protocol.adapt_interval must be positive")
        if self.adapt_min_samples < 1:
            problems.append("protocol.adapt_min_samples must be >= 1")
        if self.adapt_hysteresis < 1.0:
            problems.append("protocol.adapt_hysteresis must be >= 1.0")
        if self.adapt_cooldown < 0:
            problems.append("protocol.adapt_cooldown must be >= 0")
        return problems


@dataclass(frozen=True)
class FaultSpec:
    """An optional nemesis plan riding along with the scenario."""

    intensity: str = "medium"
    #: nemesis seed; 0 = inherit the scenario seed
    seed: int = 0
    #: nemesis horizon scale; 0 = the workload's warmup + duration
    duration: float = 0.0
    #: extra seconds to quiesce after the final heal (soak harness)
    settle: float = 30.0
    #: extra membership-churn ops on top of the intensity profile
    #: (join/leave swaps and paired scale cycles; see docs/FAULTS.md)
    joins: int = 0
    leaves: int = 0
    scale_cycles: int = 0

    def lint(self) -> List[str]:
        problems = []
        if self.intensity not in INTENSITIES:
            problems.append(
                f"faults.intensity {self.intensity!r} not in {list(INTENSITIES)}")
        if self.duration < 0:
            problems.append("faults.duration must be >= 0")
        if self.settle < 0:
            problems.append("faults.settle must be >= 0")
        if self.joins < 0 or self.leaves < 0 or self.scale_cycles < 0:
            problems.append("faults.joins, leaves and scale_cycles must "
                            "be >= 0")
        return problems

    def churn(self) -> bool:
        """True when this spec asks for any membership churn."""
        return (self.intensity == "churn" or self.joins > 0
                or self.leaves > 0 or self.scale_cycles > 0)


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete, serializable scenario."""

    name: str
    topology: TopologySpec = field(default_factory=TopologySpec)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    protocol: ProtocolSpec = field(default_factory=ProtocolSpec)
    faults: Optional[FaultSpec] = None
    #: ``none`` (opaque payloads) | ``sharded_kv`` (repro.apps.sharded_kv)
    app: str = "none"
    backend: str = "sim"
    seed: int = 1

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCENARIO_SCHEMA_VERSION,
            "name": self.name,
            "app": self.app,
            "backend": self.backend,
            "seed": self.seed,
            "topology": _section_to_dict(self.topology),
            "workload": _section_to_dict(self.workload),
            "protocol": _section_to_dict(self.protocol),
            "faults": _section_to_dict(self.faults) if self.faults else None,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "ScenarioSpec":
        if not isinstance(raw, dict):
            raise ConfigurationError(
                f"scenario must be an object, got {type(raw).__name__}")
        schema = int(raw.get("schema", SCENARIO_SCHEMA_VERSION))
        if schema not in SUPPORTED_SCHEMAS:
            raise ConfigurationError(
                f"unsupported scenario schema {schema} "
                f"(this build reads schemas {list(SUPPORTED_SCHEMAS)})")
        if schema < 2:
            _reject_v2_usage(raw)
        if schema < 3:
            _reject_v3_usage(raw)
        if schema < 4:
            _reject_v4_usage(raw)
        if schema < 5:
            _reject_v5_usage(raw)
        known = {"schema", "name", "app", "backend", "seed",
                 "topology", "workload", "protocol", "faults"}
        unknown = sorted(set(raw) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown key(s) {unknown} in scenario; known: {sorted(known)}")
        if "name" not in raw or not str(raw["name"]):
            raise ConfigurationError("scenario needs a non-empty 'name'")
        faults_raw = raw.get("faults")
        return cls(
            name=str(raw["name"]),
            app=str(raw.get("app", "none")),
            backend=str(raw.get("backend", "sim")),
            seed=int(raw.get("seed", 1)),
            topology=_section_from_dict(
                TopologySpec, raw.get("topology", {}), "topology"),
            workload=_section_from_dict(
                WorkloadSpec, raw.get("workload", {}), "workload"),
            protocol=_section_from_dict(
                ProtocolSpec, raw.get("protocol", {}), "protocol"),
            faults=(_section_from_dict(FaultSpec, faults_raw, "faults")
                    if faults_raw is not None else None),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"scenario is not valid JSON: {exc}") from exc
        return cls.from_dict(raw)

    @classmethod
    def load(cls, path: str) -> "ScenarioSpec":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    # -- linting --------------------------------------------------------------

    def validate(self) -> List[str]:
        """All semantic problems of this spec (empty = runnable)."""
        problems: List[str] = []
        if not self.name:
            problems.append("scenario needs a non-empty name")
        if self.app not in APPS:
            problems.append(f"app {self.app!r} not in {list(APPS)}")
        if self.backend not in BACKENDS:
            problems.append(f"backend {self.backend!r} not in {list(BACKENDS)}")
        problems.extend(self.topology.lint())
        problems.extend(self.workload.lint(app=self.app))
        problems.extend(self.protocol.lint())
        if self.faults is not None:
            problems.extend(self.faults.lint())
        needs_pairs = (
            self.workload.destinations == "global"
            or (self.workload.destinations in ("mixed", "zipfian", "hotspot")
                and self.workload.global_parts > 0)
        )
        if needs_pairs and len(self.target_names()) < 2:
            problems.append(
                "global destinations need at least two target groups")
        if self.app == "sharded_kv" and self.workload.keys < len(self.target_names()):
            problems.append(
                "workload.keys should be >= the shard count so every shard "
                "owns at least one key")
        if self.protocol.wire not in ("json", "auto") and self.backend != "rt":
            problems.append(
                f"protocol.wire {self.protocol.wire!r} needs backend 'rt' — "
                "the sim backend passes message objects by reference and "
                "never serializes them (use 'auto' to pick per backend)")
        if (self.workload.destinations == "hotpairs"
                and len(self.target_names()) < 2):
            problems.append(
                "workload.destinations 'hotpairs' needs at least two "
                "target groups")
        if (self.workload.read_ratio > 0
                and self.workload.read_mode == "snapshot"
                and self.protocol.checkpoint_interval <= 0):
            problems.append(
                "workload.read_mode 'snapshot' needs "
                "protocol.checkpoint_interval > 0 (snapshot reads are "
                "served from checkpoints)")
        return problems

    def check(self) -> "ScenarioSpec":
        """Raise :class:`ConfigurationError` on the first lint problem."""
        problems = self.validate()
        if problems:
            raise ConfigurationError(
                f"scenario {self.name!r} is invalid: " + "; ".join(problems))
        return self

    # -- convenience ----------------------------------------------------------

    def target_names(self) -> Tuple[str, ...]:
        return self.topology.target_names()

    @property
    def horizon(self) -> float:
        """Virtual end of the measured run (warmup + duration)."""
        return self.workload.warmup + self.workload.duration

    def fault_seed(self) -> int:
        if self.faults is None or self.faults.seed == 0:
            return self.seed
        return self.faults.seed

    def fault_duration(self) -> float:
        if self.faults is None or self.faults.duration == 0.0:
            return self.horizon
        return self.faults.duration

    def with_(self, **changes) -> "ScenarioSpec":
        """A copy with top-level fields replaced (sections stay shared)."""
        return dataclasses.replace(self, **changes)

    # the heavy lifting lives in repro.scenario.build; these delegates keep
    # call sites (`spec.build_tree()`) free of an extra import

    def build_tree(self):
        from repro.scenario.build import build_tree

        return build_tree(self.topology)

    def build_deployment(self, **kwargs):
        from repro.scenario.build import build_deployment

        return build_deployment(self, **kwargs)

    def run(self, **kwargs):
        from repro.scenario.build import run_scenario

        return run_scenario(self, **kwargs)
