"""Deterministic canonical serialization and message digests."""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any

from repro.crypto import cache as _cache
from repro.errors import CryptoError


def _memoisable(obj: Any) -> bool:
    """Containers and messages worth caching by identity.

    Scalars are cheap to canonicalize and (for small ints / interned
    strings) may be shared across unrelated values, so only compound
    objects — batch tuples and frozen dataclass messages — are memoised.
    """
    return isinstance(obj, tuple) or (
        dataclasses.is_dataclass(obj) and not isinstance(obj, type)
    )


# Per-dataclass canonical layout, built lazily: the class-name header and,
# per field, the pre-encoded ``S<len>:<name>=`` prefix plus the attribute
# name.  Field names never change at runtime, so re-encoding them for
# every message canonicalized is pure waste on the digest hot path.
_CANON_META: dict = {}


def _canon_meta(cls):
    name = cls.__name__.encode()
    fields = []
    for f in dataclasses.fields(cls):
        encoded = f.name.encode("utf-8")
        prefix = b"S" + str(len(encoded)).encode() + b":" + encoded + b"="
        fields.append((prefix, f.name))
    meta = (b"C" + name + b"(", tuple(fields))
    _CANON_META[cls] = meta
    return meta


def canonical_bytes(obj: Any) -> bytes:
    """Serialize ``obj`` into a canonical byte string.

    Supports the value types used in protocol messages: None, bool, int,
    float, str, bytes, tuples/lists, frozensets/sets (sorted by canonical
    form), dicts (sorted by key form), and frozen dataclasses.  Type tags are
    included so ``1`` and ``"1"`` never collide.

    Results for tuples and dataclasses are memoised by object identity (see
    :mod:`repro.crypto.cache`): replicas repeatedly canonicalize the same
    request, batch and vote objects, and the recursive walk dominates the
    crypto hot path.
    """
    cache = _cache.canonical_cache if _cache.enabled() else None
    if cache is not None and _memoisable(obj):
        cached = cache.get(obj)
        if cached is not None:
            return cached
    out = bytearray()
    _canonical_into(out, obj, cache)
    return bytes(out)


def _canonical_into(out: bytearray, obj: Any, cache) -> None:
    # Accumulates into ``out`` instead of allocating per-node byte strings;
    # output is byte-identical to the historical per-node concatenation
    # (golden traces pin digests).  Exact-type dispatch first, ordered by
    # frequency in protocol messages; subclasses fall through below.
    kind = type(obj)
    if kind is str:
        encoded = obj.encode("utf-8")
        out += b"S"
        out += str(len(encoded)).encode()
        out += b":"
        out += encoded
    elif kind is int:
        out += b"I%d" % obj
    elif kind is bytes:
        out += b"Y"
        out += str(len(obj)).encode()
        out += b":"
        out += obj
    elif kind is tuple or kind is list:
        if cache is not None and kind is tuple:
            cached = cache.get(obj)
            if cached is not None:
                out += cached
                return
            start = len(out)
            out += b"T("
            comma = False
            for item in obj:
                if comma:
                    out += b","
                comma = True
                _canonical_into(out, item, cache)
            out += b")"
            cache.put(obj, bytes(out[start:]))
            return
        out += b"T("
        comma = False
        for item in obj:
            if comma:
                out += b","
            comma = True
            _canonical_into(out, item, cache)
        out += b")"
    elif obj is None:
        out += b"N"
    elif obj is True:
        out += b"B1"
    elif obj is False:
        out += b"B0"
    elif kind is float:
        out += b"F"
        out += repr(obj).encode()
    elif kind is set or kind is frozenset:
        parts = sorted(canonical_bytes(item) for item in obj)
        out += b"Z("
        out += b",".join(parts)
        out += b")"
    elif kind is dict:
        parts = sorted(
            canonical_bytes(k) + b"=" + canonical_bytes(v) for k, v in obj.items()
        )
        out += b"D("
        out += b",".join(parts)
        out += b")"
    else:
        if not (dataclasses.is_dataclass(obj) and not isinstance(obj, type)):
            # bool/int/float/str subclasses take the slow isinstance path.
            if isinstance(obj, bool):
                out += b"B1" if obj else b"B0"
            elif isinstance(obj, int):
                out += b"I%d" % obj
            elif isinstance(obj, float):
                out += b"F"
                out += repr(obj).encode()
            elif isinstance(obj, str):
                _canonical_into(out, str(obj), cache)
            elif isinstance(obj, bytes):
                _canonical_into(out, bytes(obj), cache)
            elif isinstance(obj, (tuple, list)):
                _canonical_into(out, tuple(obj), cache)
            elif isinstance(obj, (set, frozenset)):
                _canonical_into(out, frozenset(obj), cache)
            elif isinstance(obj, dict):
                _canonical_into(out, dict(obj), cache)
            else:
                raise CryptoError(
                    f"cannot canonicalize object of type {kind.__name__}")
            return
        if cache is not None:
            cached = cache.get(obj)
            if cached is not None:
                out += cached
                return
        start = len(out)
        meta = _CANON_META.get(kind)
        if meta is None:
            meta = _canon_meta(kind)
        header, fields = meta
        out += header
        comma = False
        for prefix, name in fields:
            if comma:
                out += b","
            comma = True
            out += prefix
            _canonical_into(out, getattr(obj, name), cache)
        out += b")"
        if cache is not None:
            cache.put(obj, bytes(out[start:]))


def _canonical_bytes_uncached(obj: Any) -> bytes:
    """Canonical form bypassing the identity cache (kept for tests)."""
    out = bytearray()
    _canonical_into(out, obj, None)
    return bytes(out)


def digest(obj: Any) -> bytes:
    """16-byte BLAKE2b digest of the canonical form of ``obj``.

    Memoised by object identity for tuples/dataclasses: every replica of a
    group digests the same proposal batch at least twice (proposal intake +
    write aggregation), and in the sim backend the batch tuple is shared by
    reference across all of them.
    """
    if _cache.enabled() and _memoisable(obj):
        cached = _cache.digest_cache.get(obj)
        if cached is not None:
            return cached
        value = hashlib.blake2b(canonical_bytes(obj), digest_size=16).digest()
        return _cache.digest_cache.put(obj, value)
    return hashlib.blake2b(canonical_bytes(obj), digest_size=16).digest()
