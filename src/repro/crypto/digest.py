"""Deterministic canonical serialization and message digests."""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any

from repro.crypto import cache as _cache
from repro.errors import CryptoError


def _memoisable(obj: Any) -> bool:
    """Containers and messages worth caching by identity.

    Scalars are cheap to canonicalize and (for small ints / interned
    strings) may be shared across unrelated values, so only compound
    objects — batch tuples and frozen dataclass messages — are memoised.
    """
    return isinstance(obj, tuple) or (
        dataclasses.is_dataclass(obj) and not isinstance(obj, type)
    )


def canonical_bytes(obj: Any) -> bytes:
    """Serialize ``obj`` into a canonical byte string.

    Supports the value types used in protocol messages: None, bool, int,
    float, str, bytes, tuples/lists, frozensets/sets (sorted by canonical
    form), dicts (sorted by key form), and frozen dataclasses.  Type tags are
    included so ``1`` and ``"1"`` never collide.

    Results for tuples and dataclasses are memoised by object identity (see
    :mod:`repro.crypto.cache`): replicas repeatedly canonicalize the same
    request, batch and vote objects, and the recursive walk dominates the
    crypto hot path.
    """
    if _cache.enabled() and _memoisable(obj):
        cached = _cache.canonical_cache.get(obj)
        if cached is not None:
            return cached
        return _cache.canonical_cache.put(obj, _canonical_bytes_uncached(obj))
    return _canonical_bytes_uncached(obj)


def _canonical_bytes_uncached(obj: Any) -> bytes:
    if obj is None:
        return b"N"
    if isinstance(obj, bool):
        return b"B1" if obj else b"B0"
    if isinstance(obj, int):
        return b"I" + str(obj).encode()
    if isinstance(obj, float):
        return b"F" + repr(obj).encode()
    if isinstance(obj, str):
        encoded = obj.encode("utf-8")
        return b"S" + str(len(encoded)).encode() + b":" + encoded
    if isinstance(obj, bytes):
        return b"Y" + str(len(obj)).encode() + b":" + obj
    if isinstance(obj, (tuple, list)):
        parts = [canonical_bytes(item) for item in obj]
        return b"T(" + b",".join(parts) + b")"
    if isinstance(obj, (set, frozenset)):
        parts = sorted(canonical_bytes(item) for item in obj)
        return b"Z(" + b",".join(parts) + b")"
    if isinstance(obj, dict):
        parts = sorted(
            canonical_bytes(k) + b"=" + canonical_bytes(v) for k, v in obj.items()
        )
        return b"D(" + b",".join(parts) + b")"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        parts = [
            canonical_bytes(f.name) + b"=" + canonical_bytes(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        ]
        return b"C" + type(obj).__name__.encode() + b"(" + b",".join(parts) + b")"
    raise CryptoError(f"cannot canonicalize object of type {type(obj).__name__}")


def digest(obj: Any) -> bytes:
    """16-byte BLAKE2b digest of the canonical form of ``obj``.

    Memoised by object identity for tuples/dataclasses: every replica of a
    group digests the same proposal batch at least twice (proposal intake +
    write aggregation), and in the sim backend the batch tuple is shared by
    reference across all of them.
    """
    if _cache.enabled() and _memoisable(obj):
        cached = _cache.digest_cache.get(obj)
        if cached is not None:
            return cached
        value = hashlib.blake2b(canonical_bytes(obj), digest_size=16).digest()
        return _cache.digest_cache.put(obj, value)
    return hashlib.blake2b(canonical_bytes(obj), digest_size=16).digest()
