"""Signatures over canonicalized objects.

Implemented as HMAC with the signer's registry secret.  Verification
re-derives the signer's secret from the (shared, trusted) registry — this
stands in for public-key verification and preserves the property the
protocols rely on: only the holder of ``identity``'s secret can produce a
signature that verifies for ``identity``.
"""

from __future__ import annotations

import hmac
import hashlib
from dataclasses import dataclass
from typing import Any

from repro.crypto import cache as _cache
from repro.crypto.digest import _memoisable, canonical_bytes
from repro.crypto.keys import KeyRegistry


@dataclass(frozen=True)
class Signature:
    """A signature tagged with the claimed signer identity."""

    signer: str
    tag: bytes


def sign(registry: KeyRegistry, identity: str, obj: Any) -> Signature:
    """Sign the canonical form of ``obj`` as ``identity``."""
    tag = hmac.new(registry.secret(identity), canonical_bytes(obj), hashlib.blake2b).digest()[:16]
    return Signature(identity, tag)


def _verify_uncached(registry: KeyRegistry, obj: Any, signature: Signature) -> bool:
    expected = hmac.new(
        registry.secret(signature.signer), canonical_bytes(obj), hashlib.blake2b
    ).digest()[:16]
    return hmac.compare_digest(expected, signature.tag)


def verify(registry: KeyRegistry, obj: Any, signature: Signature) -> bool:
    """True iff ``signature`` is a valid signature of ``obj`` by its signer.

    Verdicts are memoised per message object (see :mod:`repro.crypto.cache`):
    a ByzCast child group receives ``3f + 1`` relayed copies of one multicast
    and every replica of the entry group re-verifies the client signature at
    admission *and* proposal validation — identical bytes each time.  The
    verdict key includes the signer's derived secret, so registries with
    different master seeds never share verdicts.
    """
    if not (_cache.enabled() and _memoisable(obj)):
        return _verify_uncached(registry, obj, signature)
    verdicts = _cache.verify_cache.get(obj)
    key = (signature.signer, signature.tag, registry.secret(signature.signer))
    if verdicts is not None:
        cached = verdicts.get(key)
        if cached is not None:
            return cached
    result = _verify_uncached(registry, obj, signature)
    if verdicts is None:
        verdicts = _cache.verify_cache.put(obj, {})
    verdicts[key] = result
    return result
