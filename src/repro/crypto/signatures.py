"""Signatures over canonicalized objects.

Implemented as HMAC with the signer's registry secret.  Verification
re-derives the signer's secret from the (shared, trusted) registry — this
stands in for public-key verification and preserves the property the
protocols rely on: only the holder of ``identity``'s secret can produce a
signature that verifies for ``identity``.
"""

from __future__ import annotations

import hmac
import hashlib
from dataclasses import dataclass
from typing import Any

from repro.crypto.digest import canonical_bytes
from repro.crypto.keys import KeyRegistry


@dataclass(frozen=True)
class Signature:
    """A signature tagged with the claimed signer identity."""

    signer: str
    tag: bytes


def sign(registry: KeyRegistry, identity: str, obj: Any) -> Signature:
    """Sign the canonical form of ``obj`` as ``identity``."""
    tag = hmac.new(registry.secret(identity), canonical_bytes(obj), hashlib.blake2b).digest()[:16]
    return Signature(identity, tag)


def verify(registry: KeyRegistry, obj: Any, signature: Signature) -> bool:
    """True iff ``signature`` is a valid signature of ``obj`` by its signer."""
    expected = hmac.new(
        registry.secret(signature.signer), canonical_bytes(obj), hashlib.blake2b
    ).digest()[:16]
    return hmac.compare_digest(expected, signature.tag)
