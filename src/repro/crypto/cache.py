"""Identity-keyed memoisation for the crypto hot path.

The broadcast engine repeatedly canonicalizes, digests and verifies the
*same* message objects: every replica of a group digests the same proposal
batch, a ByzCast child group receives ``3f + 1`` relayed copies of one
multicast, and the simulation backend shares message objects by reference
across actors.  Canonicalization is a recursive pure-Python walk, so it
dominates the wall-clock cost of those steps — memoising it (and the
verification verdicts derived from it) removes the duplicate work without
changing a single observable result.

Design constraints:

* **Identity keys.**  Entries are keyed on ``id(obj)`` and hold a strong
  reference to the object, so a key can never be reused by a different
  object while its entry is alive.  Value-based keys would be unsound:
  ``1 == 1.0 == True`` yet their canonical forms differ.
* **Bounded.**  Each cache is an LRU with a fixed entry budget; a soak that
  churns through millions of messages cannot grow memory without bound.
* **Transparent.**  All cached functions are pure, so behaviour (and the
  sim backend's golden traces) is bit-identical with caching on or off —
  pinned by ``tests/crypto/test_cache_golden.py``.  The global switch below
  exists so that test can prove it.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

#: entry budgets; sized for a few in-flight consensus instances per group
#: across a large deployment, not for a whole run's history
CANONICAL_CACHE_SIZE = 8192
DIGEST_CACHE_SIZE = 8192
VERIFY_CACHE_SIZE = 4096
ENCODE_CACHE_SIZE = 2048
WIRE_ENCODE_CACHE_SIZE = 2048

_MISSING = object()


class IdentityCache:
    """A bounded LRU cache keyed on object identity.

    Holding a strong reference to the key object guarantees its ``id`` stays
    valid for the lifetime of the entry (CPython reuses addresses only after
    deallocation).
    """

    __slots__ = ("maxsize", "hits", "misses", "_entries")

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        #: id(obj) -> (obj, value)
        self._entries: "OrderedDict[int, tuple]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, obj: Any, default: Any = None) -> Any:
        entry = self._entries.get(id(obj))
        if entry is not None and entry[0] is obj:
            self.hits += 1
            self._entries.move_to_end(id(obj))
            return entry[1]
        self.misses += 1
        return default

    def put(self, obj: Any, value: Any) -> Any:
        key = id(obj)
        self._entries[key] = (obj, value)
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return value

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


_enabled = True
canonical_cache = IdentityCache(CANONICAL_CACHE_SIZE)
digest_cache = IdentityCache(DIGEST_CACHE_SIZE)
verify_cache = IdentityCache(VERIFY_CACHE_SIZE)
encode_cache = IdentityCache(ENCODE_CACHE_SIZE)
#: the binary wire codec's encode memo; separate from ``encode_cache``
#: because both codecs key on object identity and the same message may be
#: framed by either (repro.env.wire vs repro.env.codec)
wire_encode_cache = IdentityCache(WIRE_ENCODE_CACHE_SIZE)

_ALL = (canonical_cache, digest_cache, verify_cache, encode_cache,
        wire_encode_cache)


def enabled() -> bool:
    """Whether crypto/codec memoisation is active."""
    return _enabled


def configure(enable: bool) -> None:
    """Turn memoisation on or off (clears all caches either way)."""
    global _enabled
    _enabled = enable
    clear_caches()


def clear_caches() -> None:
    """Drop every cached entry (and reset hit/miss counters)."""
    for cache in _ALL:
        cache.clear()


def cache_stats() -> Dict[str, Dict[str, int]]:
    """Hit/miss/size counters per cache — surfaced in BENCH reports."""
    names = ("canonical", "digest", "verify", "encode", "wire_encode")
    return {
        name: {"hits": cache.hits, "misses": cache.misses, "size": len(cache)}
        for name, cache in zip(names, _ALL)
    }


@contextmanager
def caching_disabled() -> Iterator[None]:
    """Temporarily disable memoisation (for equivalence tests)."""
    previous = _enabled
    configure(False)
    try:
        yield
    finally:
        configure(previous)
