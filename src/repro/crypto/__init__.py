"""Cryptographic substrate (simulation-grade but honest).

The protocols only require three properties from cryptography (§II-A):
message digests, authenticated channels (MACs), and unforgeable signatures.
We implement them with :mod:`hashlib`/:mod:`hmac` over per-identity secret
keys held in a :class:`~repro.crypto.keys.KeyRegistry`.  Within a simulation
the unforgeability guarantee is real: a Byzantine actor can only produce
signatures for identities whose secret key it holds, so fabricated messages
fail verification at correct replicas exactly as they would in a deployment.

Computational cost of crypto is modelled separately as CPU service time in
the performance model — these functions are for *correctness*, the cost
knobs are in :mod:`repro.runtime.environments`.
"""

from repro.crypto.cache import (
    cache_stats,
    caching_disabled,
    clear_caches,
    configure as configure_caching,
)
from repro.crypto.keys import KeyRegistry
from repro.crypto.digest import digest, canonical_bytes
from repro.crypto.signatures import Signature, sign, verify
from repro.crypto.mac import mac, verify_mac, mac_vector, verify_mac_vector

__all__ = [
    "KeyRegistry",
    "digest",
    "canonical_bytes",
    "Signature",
    "sign",
    "verify",
    "mac",
    "verify_mac",
    "mac_vector",
    "verify_mac_vector",
    "cache_stats",
    "caching_disabled",
    "clear_caches",
    "configure_caching",
]
