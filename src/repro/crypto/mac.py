"""Pairwise message-authentication codes and batch MAC vectors.

BFT-SMaRt authenticates replica-to-replica channels with MAC vectors: the
sender hashes a message once and attaches one small per-link HMAC over
that hash for each destination — n cheap HMACs over 32 bytes instead of n
full-body MACs (Bessani et al., DSN 2014).  We model both levels: a
pairwise MAC keyed by the unordered pair of identities — enough to detect
tampering and impersonation between two honest endpoints — and the
amortised batch vector of :func:`mac_vector` / :func:`verify_mac_vector`,
where the single body digest rides the identity-memoised cache of
:mod:`repro.crypto.digest`, so a broadcast pays the canonical walk once
across all links.
"""

from __future__ import annotations

import hmac
import hashlib
from typing import Any, Dict, Iterable

from repro.crypto.digest import canonical_bytes, digest
from repro.crypto.keys import KeyRegistry


def _pair_key(registry: KeyRegistry, a: str, b: str) -> bytes:
    """The 32-byte channel key of the unordered identity pair (cached).

    Secrets are deterministic per identity, so the derived pair key is a
    pure function of (registry, pair) — memoised on the registry itself to
    spare the blake2b per MAC on hot links.
    """
    low, high = sorted((a, b))
    cache = getattr(registry, "_pair_keys", None)
    if cache is None:
        cache = registry._pair_keys = {}
    key = cache.get((low, high))
    if key is None:
        key = cache[(low, high)] = hashlib.blake2b(
            registry.secret(low) + registry.secret(high), digest_size=32
        ).digest()
    return key


def mac(registry: KeyRegistry, src: str, dst: str, obj: Any) -> bytes:
    """MAC of ``obj`` under the pairwise key of (src, dst)."""
    return hmac.new(_pair_key(registry, src, dst), canonical_bytes(obj), hashlib.blake2b).digest()[:16]


def verify_mac(registry: KeyRegistry, src: str, dst: str, obj: Any, tag: bytes) -> bool:
    """True iff ``tag`` authenticates ``obj`` between ``src`` and ``dst``."""
    expected = mac(registry, src, dst, obj)
    return hmac.compare_digest(expected, tag)


def _link_tag(registry: KeyRegistry, src: str, dst: str, body: bytes) -> bytes:
    return hmac.new(_pair_key(registry, src, dst), body,
                    hashlib.blake2b).digest()[:16]


def mac_vector(registry: KeyRegistry, src: str, dsts: Iterable[str],
               obj: Any) -> Dict[str, bytes]:
    """One MAC tag per destination, amortising the body hash across links.

    ``obj`` (typically a proposal batch) is canonicalized and digested
    exactly once — memoised by identity, so repeated vectors over the same
    batch object skip even that — and each link's tag is an HMAC over the
    32-byte digest under the pairwise channel key.
    """
    body = digest(obj)
    return {dst: _link_tag(registry, src, dst, body) for dst in dsts}


def verify_mac_vector(registry: KeyRegistry, src: str, dst: str, obj: Any,
                      vector: Dict[str, bytes]) -> bool:
    """True iff ``vector`` carries a valid tag for ``dst``.

    Verification is per-link: a receiver checks only its own entry, and a
    tag forged for one link says nothing about the others (the per-pair
    keys are independent).
    """
    tag = vector.get(dst)
    if tag is None:
        return False
    expected = _link_tag(registry, src, dst, digest(obj))
    return hmac.compare_digest(expected, tag)
