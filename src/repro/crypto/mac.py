"""Pairwise message-authentication codes.

BFT-SMaRt authenticates replica-to-replica channels with MAC vectors.  We
model a pairwise MAC keyed by the unordered pair of identities — enough to
detect tampering and impersonation between two honest endpoints.
"""

from __future__ import annotations

import hmac
import hashlib
from typing import Any

from repro.crypto.digest import canonical_bytes
from repro.crypto.keys import KeyRegistry


def _pair_key(registry: KeyRegistry, a: str, b: str) -> bytes:
    low, high = sorted((a, b))
    return hashlib.blake2b(
        registry.secret(low) + registry.secret(high), digest_size=32
    ).digest()


def mac(registry: KeyRegistry, src: str, dst: str, obj: Any) -> bytes:
    """MAC of ``obj`` under the pairwise key of (src, dst)."""
    return hmac.new(_pair_key(registry, src, dst), canonical_bytes(obj), hashlib.blake2b).digest()[:16]


def verify_mac(registry: KeyRegistry, src: str, dst: str, obj: Any, tag: bytes) -> bool:
    """True iff ``tag`` authenticates ``obj`` between ``src`` and ``dst``."""
    expected = mac(registry, src, dst, obj)
    return hmac.compare_digest(expected, tag)
