"""Per-identity secret keys.

A :class:`KeyRegistry` is the simulation's trusted key-distribution
authority: it derives one secret per identity from a master seed.  Honest
components fetch only their own secret; Byzantine behaviours in
:mod:`repro.faults` are likewise handed only the secrets of the identities
they control, so signature forgery is impossible by construction.
"""

from __future__ import annotations

import hashlib
from typing import Dict


class KeyRegistry:
    """Derives and caches per-identity secrets from a master seed."""

    def __init__(self, master_seed: bytes = b"byzcast-master") -> None:
        self._master = master_seed
        self._cache: Dict[str, bytes] = {}

    def secret(self, identity: str) -> bytes:
        """The 32-byte secret key of ``identity`` (deterministic)."""
        if identity not in self._cache:
            self._cache[identity] = hashlib.blake2b(
                self._master + b"|" + identity.encode("utf-8"), digest_size=32
            ).digest()
        return self._cache[identity]
