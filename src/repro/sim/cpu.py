"""Single-server CPU queue for one simulated node.

Every replica and client node owns a :class:`CpuQueue`.  Work items (message
handling, signature checks, consensus processing) are submitted with a
service time; items are served FIFO by a single server.  This is what turns
per-message costs into the saturation throughput and queueing latency the
paper measures: a group's capacity ``K(x)`` emerges as ``1 / service_time``
of its busiest replica (the leader), and latency grows once offered load
approaches that capacity.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.events import EventLoop


class CpuQueue:
    """FIFO single-server queue driven by the event loop.

    >>> loop = EventLoop()
    >>> cpu = CpuQueue(loop)
    >>> done = []
    >>> cpu.submit(0.5, lambda: done.append(loop.now))
    >>> cpu.submit(0.25, lambda: done.append(loop.now))
    >>> loop.run()
    >>> done   # second job waits for the first
    [0.5, 0.75]
    """

    def __init__(self, loop: EventLoop) -> None:
        self._loop = loop
        self._busy_until = 0.0
        self.jobs_done = 0
        self.busy_time = 0.0

    @property
    def backlog(self) -> float:
        """Seconds of queued work ahead of a job submitted right now."""
        return max(0.0, self._busy_until - self._loop.now)

    def submit(self, service_time: float, callback: Callable[[], None]) -> float:
        """Enqueue a job; ``callback`` fires when the job completes.

        Returns the absolute completion time.
        """
        if service_time < 0:
            raise ValueError("service time must be non-negative")
        start = max(self._loop.now, self._busy_until)
        finish = start + service_time
        self._busy_until = finish
        self.jobs_done += 1
        self.busy_time += service_time
        self._loop.schedule_at(finish, callback)
        return finish

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds this CPU spent serving jobs."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)
