"""Backward-compatible alias: the actor base class moved to ``repro.env``.

:class:`~repro.env.actor.Actor` is backend-agnostic; constructing it with a
bare :class:`~repro.sim.events.EventLoop` (the historical signature) still
works — the loop is adapted into a clock-only sim runtime on the fly.
"""

from repro.env.actor import Actor

__all__ = ["Actor"]
