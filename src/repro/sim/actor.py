"""Actor base class: a simulated process with a CPU and a mailbox.

Actors communicate exclusively through the :class:`~repro.sim.network.Network`
(no shared memory, no global clock — matching the system model of §II-A).
Incoming messages are funneled through :meth:`Actor.receive`, which charges
the configured per-message CPU cost before invoking :meth:`Actor.on_message`.
Subclasses implement ``on_message`` and may use :meth:`set_timer` for
timeouts (leader-change timers, client retransmission, ...).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.events import Event, EventLoop
from repro.sim.cpu import CpuQueue
from repro.sim.monitor import Monitor


class Actor:
    """A named simulated process.

    Args:
        name: globally unique endpoint name; also the network address.
        loop: the shared event loop.
        monitor: shared monitor for counters/trace.
        recv_cpu_cost: CPU service time charged for every received message
            before ``on_message`` runs (models deserialization + MAC check).
    """

    def __init__(
        self,
        name: str,
        loop: EventLoop,
        monitor: Optional[Monitor] = None,
        recv_cpu_cost: float = 0.0,
    ) -> None:
        self.name = name
        self.loop = loop
        self.monitor = monitor if monitor is not None else Monitor()
        self.cpu = CpuQueue(loop)
        self.recv_cpu_cost = recv_cpu_cost
        self.network = None  # attached by Network.register
        self.crashed = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Hook called once the deployment is wired up.  Default: no-op."""

    def crash(self) -> None:
        """Stop reacting to anything (benign crash)."""
        self.crashed = True

    # -- messaging ---------------------------------------------------------

    def send(self, dst: str, payload: Any, size: int = 64) -> None:
        """Send ``payload`` to actor named ``dst`` via the network."""
        if self.crashed:
            return
        if self.network is None:
            raise RuntimeError(f"actor {self.name} is not attached to a network")
        self.network.send(self.name, dst, payload, size)

    def receive(self, src: str, payload: Any) -> None:
        """Called by the network on message arrival; charges CPU then handles."""
        if self.crashed:
            return
        if self.recv_cpu_cost > 0:
            self.cpu.submit(self.recv_cpu_cost, lambda: self._handle(src, payload))
        else:
            self._handle(src, payload)

    def _handle(self, src: str, payload: Any) -> None:
        if self.crashed:
            return
        self.on_message(src, payload)

    def on_message(self, src: str, payload: Any) -> None:
        """Handle a delivered message.  Subclasses must override."""
        raise NotImplementedError

    # -- timers ------------------------------------------------------------

    def set_timer(self, delay: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` after ``delay`` seconds unless cancelled/crashed."""

        def fire() -> None:
            if not self.crashed:
                callback()

        return self.loop.schedule(delay, fire)

    def work(self, service_time: float, callback: Callable[[], None]) -> None:
        """Charge ``service_time`` of CPU, then run ``callback``."""

        def fire() -> None:
            if not self.crashed:
                callback()

        self.cpu.submit(service_time, fire)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"
