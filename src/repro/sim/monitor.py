"""Backward-compatible alias: the monitor moved to ``repro.env.monitor``."""

from repro.env.monitor import Monitor, TraceRecord

__all__ = ["Monitor", "TraceRecord"]
