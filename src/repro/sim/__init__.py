"""Deterministic discrete-event simulation kernel.

The kernel is deliberately small: a heap-ordered event loop
(:class:`~repro.sim.events.EventLoop`), an actor abstraction
(:class:`~repro.sim.actor.Actor`), a message-passing network with pluggable
latency models (:class:`~repro.sim.network.Network`), and a single-server CPU
queue per node (:class:`~repro.sim.cpu.CpuQueue`) that turns per-message
processing costs into realistic saturation and queueing behaviour.

Everything is deterministic given a seed: the event heap breaks ties by
insertion order and all randomness flows through :class:`~repro.sim.rng.SeededRng`.
"""

from repro.sim.events import Event, EventLoop
from repro.sim.rng import SeededRng
from repro.sim.actor import Actor
from repro.sim.cpu import CpuQueue
from repro.sim.network import Network, NetworkConfig
from repro.sim.latency import (
    ConstantLatency,
    JitterLatency,
    LatencyModel,
    LogNormalLatency,
    MatrixLatency,
)
from repro.sim.monitor import Monitor

__all__ = [
    "Event",
    "EventLoop",
    "SeededRng",
    "Actor",
    "CpuQueue",
    "Network",
    "NetworkConfig",
    "LatencyModel",
    "ConstantLatency",
    "JitterLatency",
    "LogNormalLatency",
    "MatrixLatency",
    "Monitor",
]
