"""Point-to-point message-passing network.

The network owns endpoint registration (name → actor + site), computes
delivery times from a :class:`~repro.sim.latency.LatencyModel`, optionally
adds transmission delay (``size / bandwidth``), and supports message drops
and site/endpoint partitions for fault experiments.

Asynchrony model: delays are finite but unbounded in principle; partitions
and drops are explicit test instruments, matching §II-A ("adversaries can
delay correct processes ... but not indefinitely").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Optional, Set, Tuple

from repro.errors import NetworkError
from repro.env.monitor import Monitor
from repro.sim.events import EventLoop
from repro.sim.latency import ConstantLatency, LatencyModel
from repro.sim.rng import SeededRng

if TYPE_CHECKING:  # imported lazily to avoid a cycle with repro.env
    from repro.env.actor import Actor


@dataclass
class NetworkConfig:
    """Tunable parameters of the simulated network.

    Attributes:
        latency: site-pair one-way delay model.
        bandwidth: bytes/second per link, or ``None`` for infinite (the
            paper's 64-byte messages on 1 Gbps make transmission negligible).
        drop_rate: i.i.d. probability a message is silently lost.
    """

    latency: LatencyModel = field(default_factory=lambda: ConstantLatency(0.00005))
    bandwidth: Optional[float] = None
    drop_rate: float = 0.0


class Network:
    """Delivers payloads between registered actors with simulated delays."""

    def __init__(
        self,
        loop: EventLoop,
        config: Optional[NetworkConfig] = None,
        rng: Optional[SeededRng] = None,
        monitor: Optional[Monitor] = None,
    ) -> None:
        self.loop = loop
        self.config = config if config is not None else NetworkConfig()
        self.monitor = monitor if monitor is not None else Monitor()
        self._rng = (rng if rng is not None else SeededRng(0)).stream("network")
        self._endpoints: Dict[str, Tuple[Actor, str]] = {}
        self._blocked_pairs: Set[Tuple[str, str]] = set()
        self._blocked_sites: Set[Tuple[str, str]] = set()

    # -- registration ------------------------------------------------------

    def register(self, actor: Actor, site: str = "site0") -> None:
        """Attach ``actor`` at ``site``; its name becomes its address."""
        if actor.name in self._endpoints:
            raise NetworkError(f"endpoint {actor.name!r} already registered")
        self._endpoints[actor.name] = (actor, site)
        actor.network = self

    def site_of(self, name: str) -> str:
        return self._endpoints[name][1]

    def endpoints(self) -> Tuple[str, ...]:
        return tuple(self._endpoints)

    # -- partitions --------------------------------------------------------

    def partition(self, a: str, b: str, *, sites: bool = False) -> None:
        """Block traffic in both directions between two endpoints or sites."""
        target = self._blocked_sites if sites else self._blocked_pairs
        target.add((a, b))
        target.add((b, a))

    def heal(self, a: str, b: str, *, sites: bool = False) -> None:
        """Undo :meth:`partition` for the given pair."""
        target = self._blocked_sites if sites else self._blocked_pairs
        target.discard((a, b))
        target.discard((b, a))

    def heal_all(self) -> None:
        self._blocked_pairs.clear()
        self._blocked_sites.clear()

    # -- sending -----------------------------------------------------------

    def send(self, src: str, dst: str, payload: Any, size: int = 64) -> None:
        """Schedule delivery of ``payload`` from ``src`` to ``dst``.

        Messages to unknown destinations raise; dropped/partitioned messages
        vanish silently (counted on the monitor).
        """
        if dst not in self._endpoints:
            raise NetworkError(f"unknown destination endpoint {dst!r}")
        if src not in self._endpoints:
            raise NetworkError(f"unknown source endpoint {src!r}")
        self.monitor.count("net.sent")
        if (src, dst) in self._blocked_pairs:
            self.monitor.count("net.partitioned")
            return
        src_site = self.site_of(src)
        dst_site = self.site_of(dst)
        if (src_site, dst_site) in self._blocked_sites:
            self.monitor.count("net.partitioned")
            return
        if self.config.drop_rate > 0 and self._rng.random() < self.config.drop_rate:
            self.monitor.count("net.dropped")
            return
        delay = self.config.latency.delay(src_site, dst_site, self._rng)
        if self.config.bandwidth:
            delay += size / self.config.bandwidth
        actor = self._endpoints[dst][0]
        self.loop.schedule(delay, lambda: actor.receive(src, payload))
