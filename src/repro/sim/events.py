"""Heap-ordered deterministic event loop.

Time is a float in **seconds**.  Events scheduled for the same instant fire
in insertion order, which makes every simulation run fully reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional

from repro.errors import SimulationError


class Event:
    """A scheduled callback.  Returned by :meth:`EventLoop.schedule`.

    Holding on to the instance allows cancellation via :meth:`cancel`;
    cancelled events are skipped (and dropped) when their time comes.
    """

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.callback: Optional[Callable[[], None]] = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True
        self.callback = None  # break reference cycles early

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, seq={self.seq}, {state})"


class EventLoop:
    """A discrete-event scheduler with a virtual clock.

    >>> loop = EventLoop()
    >>> fired = []
    >>> _ = loop.schedule(1.0, lambda: fired.append(loop.now))
    >>> loop.run()
    >>> fired
    [1.0]
    """

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._stopped = False

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still on the heap (including cancelled ones)."""
        return len(self._heap)

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        event = Event(self._now + delay, next(self._seq), callback)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute virtual ``time``."""
        return self.schedule(time - self._now, callback)

    def stop(self) -> None:
        """Make the currently running :meth:`run` return after this event."""
        self._stopped = True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Process events in time order.

        Args:
            until: stop once virtual time would exceed this value; the clock
                is advanced to ``until`` and remaining events stay queued.
            max_events: safety valve — raise :class:`SimulationError` if more
                than this many events fire (catches livelock in protocols).
        """
        self._stopped = False
        fired = 0
        while self._heap and not self._stopped:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if until is not None and event.time > until:
                heapq.heappush(self._heap, event)
                self._now = until
                return
            self._now = event.time
            callback, event.callback = event.callback, None
            assert callback is not None
            callback()
            fired += 1
            if max_events is not None and fired > max_events:
                raise SimulationError(
                    f"event budget exhausted ({max_events} events) — livelock?"
                )
        if until is not None and self._now < until:
            self._now = until
