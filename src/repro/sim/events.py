"""Heap-ordered deterministic event loop.

Time is a float in **seconds**.  Events scheduled for the same instant fire
in insertion order, which makes every simulation run fully reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional

from repro.errors import SimulationError

#: cancelled-event count past which the heap is compacted (and only when
#: cancelled events are at least half the heap)
_COMPACT_MIN = 64


class Event:
    """A scheduled callback.  Returned by :meth:`EventLoop.schedule`.

    Holding on to the instance allows cancellation via :meth:`cancel`;
    cancelled events are skipped (and dropped) when their time comes.
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "_loop")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.callback: Optional[Callable[[], None]] = callback
        self.cancelled = False
        self._loop: Optional["EventLoop"] = None

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        self.callback = None  # break reference cycles early
        if self._loop is not None:
            self._loop._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, seq={self.seq}, {state})"


class EventLoop:
    """A discrete-event scheduler with a virtual clock.

    >>> loop = EventLoop()
    >>> fired = []
    >>> _ = loop.schedule(1.0, lambda: fired.append(loop.now))
    >>> loop.run()
    >>> fired
    [1.0]
    """

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._stopped = False
        self._cancelled = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of live (not cancelled) events still scheduled."""
        return len(self._heap) - self._cancelled

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        event = Event(self._now + delay, next(self._seq), callback)
        event._loop = self
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute virtual ``time``."""
        return self.schedule(time - self._now, callback)

    def stop(self) -> None:
        """Make the currently running :meth:`run` return after this event."""
        self._stopped = True

    def _note_cancelled(self) -> None:
        """Lazy compaction: drop cancelled events once they dominate the heap.

        Rebuilding preserves determinism — event order is the total order
        (time, seq), which heapify re-establishes exactly.
        """
        self._cancelled += 1
        if self._cancelled >= _COMPACT_MIN and self._cancelled * 2 >= len(self._heap):
            self._heap = [e for e in self._heap if not e.cancelled]
            heapq.heapify(self._heap)
            self._cancelled = 0

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Process events in time order.

        Args:
            until: stop once virtual time would exceed this value; the clock
                is advanced to ``until`` and remaining events stay queued.
            max_events: safety valve — raise :class:`SimulationError` once a
                live event beyond the budget of ``max_events`` fired
                callbacks is due (catches livelock in protocols).  Exactly
                ``max_events`` callbacks run before the raise.
        """
        self._stopped = False
        fired = 0
        while self._heap and not self._stopped:
            # Peek: budget/pause checks must not pop-then-re-push (that
            # churns the heap on every stop); the event is only removed
            # once it is certain to fire.
            event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                self._cancelled -= 1
                continue
            if until is not None and event.time > until:
                self._now = until
                return
            if max_events is not None and fired >= max_events:
                raise SimulationError(
                    f"event budget exhausted ({max_events} events) — livelock?"
                )
            heapq.heappop(self._heap)
            self._now = event.time
            event._loop = None  # fired: a late cancel() must not count
            event.callback()
            fired += 1
        if until is not None and self._now < until:
            self._now = until
