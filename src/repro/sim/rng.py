"""Seeded random-number streams.

Every stochastic component draws from its own named stream so that adding a
new source of randomness (say, a jittery link) does not perturb the draws of
unrelated components — runs stay comparable across code changes.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict


class SeededRng:
    """A factory of independent, deterministic :class:`random.Random` streams.

    >>> rng = SeededRng(7)
    >>> a = rng.stream("net").random()
    >>> b = SeededRng(7).stream("net").random()
    >>> a == b
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            mixed = (self.seed << 32) ^ zlib.crc32(name.encode("utf-8"))
            self._streams[name] = random.Random(mixed)
        return self._streams[name]
