"""Network latency models.

A latency model maps an ordered pair of *sites* to a one-way delay in
seconds.  Endpoints (processes) are assigned to sites by the
:class:`~repro.sim.network.Network`; within one site the model still decides
the delay (e.g. the LAN model returns ~0.05 ms, half the paper's 0.1 ms RTT).
"""

from __future__ import annotations

import random
from typing import Dict, Mapping, Optional, Tuple


class LatencyModel:
    """Base class: one-way delay between two sites, in seconds."""

    def delay(self, src_site: str, dst_site: str, rng: random.Random) -> float:
        raise NotImplementedError


class ConstantLatency(LatencyModel):
    """The same one-way delay for every pair of sites.

    >>> ConstantLatency(0.00005).delay("a", "b", random.Random(0))
    5e-05
    """

    def __init__(self, one_way: float) -> None:
        if one_way < 0:
            raise ValueError("latency must be non-negative")
        self.one_way = one_way

    def delay(self, src_site: str, dst_site: str, rng: random.Random) -> float:
        return self.one_way


class JitterLatency(LatencyModel):
    """A base delay with multiplicative uniform jitter.

    ``delay = base * uniform(1 - jitter, 1 + jitter)``.  This is the default
    LAN model: base 50 µs (0.1 ms RTT, §V-B1) with 20 % jitter, which keeps
    message arrivals from degenerate simultaneity without changing averages.
    """

    def __init__(self, base: float, jitter: float = 0.2) -> None:
        if base < 0 or not 0 <= jitter < 1:
            raise ValueError("need base >= 0 and 0 <= jitter < 1")
        self.base = base
        self.jitter = jitter

    def delay(self, src_site: str, dst_site: str, rng: random.Random) -> float:
        if self.jitter == 0:
            return self.base
        return self.base * rng.uniform(1 - self.jitter, 1 + self.jitter)


class LogNormalLatency(LatencyModel):
    """Log-normally distributed one-way delay (heavy-tailed realism).

    Real network delays have long right tails; this model samples
    ``delay = median * exp(sigma * N(0, 1))``, clamped below at
    ``floor * median`` (propagation delay cannot shrink arbitrarily).

    Args:
        median: the distribution's median one-way delay (seconds).
        sigma: log-scale spread; 0.1-0.3 is typical for LANs, 0.05-0.15
            for long-haul WAN paths.
        floor: lower clamp as a fraction of the median.
    """

    def __init__(self, median: float, sigma: float = 0.2,
                 floor: float = 0.7) -> None:
        if median < 0 or sigma < 0 or not 0 < floor <= 1:
            raise ValueError("need median, sigma >= 0 and 0 < floor <= 1")
        self.median = median
        self.sigma = sigma
        self.floor = floor

    def delay(self, src_site: str, dst_site: str, rng: random.Random) -> float:
        if self.sigma == 0:
            return self.median
        sample = self.median * (2.718281828459045 ** (self.sigma * rng.gauss(0, 1)))
        return max(self.floor * self.median, sample)


class MatrixLatency(LatencyModel):
    """Pairwise one-way delays from a site-to-site matrix (WAN, Table I).

    Args:
        matrix: mapping ``(site_a, site_b) -> one-way seconds``; symmetric
            entries are filled in automatically, so only one direction needs
            to be given.
        local: delay used when both endpoints are at the same site.
        jitter: multiplicative uniform jitter applied to every delay.
    """

    def __init__(
        self,
        matrix: Mapping[Tuple[str, str], float],
        local: float = 0.00005,
        jitter: float = 0.05,
    ) -> None:
        self._matrix: Dict[Tuple[str, str], float] = {}
        for (a, b), value in matrix.items():
            if value < 0:
                raise ValueError(f"negative latency for {(a, b)}")
            self._matrix[(a, b)] = value
            self._matrix.setdefault((b, a), value)
        self.local = local
        self.jitter = jitter

    def sites(self) -> Tuple[str, ...]:
        seen = []
        for a, b in self._matrix:
            for site in (a, b):
                if site not in seen:
                    seen.append(site)
        return tuple(seen)

    def base_delay(self, src_site: str, dst_site: str) -> Optional[float]:
        if src_site == dst_site:
            return self.local
        return self._matrix.get((src_site, dst_site))

    def delay(self, src_site: str, dst_site: str, rng: random.Random) -> float:
        base = self.base_delay(src_site, dst_site)
        if base is None:
            raise KeyError(f"no latency entry for sites {src_site!r}→{dst_site!r}")
        if self.jitter == 0:
            return base
        return base * rng.uniform(1 - self.jitter, 1 + self.jitter)
