"""Exception hierarchy for the ByzCast reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish configuration mistakes from protocol violations detected
at runtime.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A deployment, tree, or workload description is invalid."""


class TreeError(ConfigurationError):
    """An overlay tree violates the structural rules of ByzCast."""


class SimulationError(ReproError):
    """The simulation kernel was used incorrectly (e.g. scheduling in the past)."""


class NetworkError(SimulationError):
    """A message was addressed to an unknown endpoint."""


class CryptoError(ReproError):
    """A signature or MAC failed verification."""


class ProtocolError(ReproError):
    """A peer sent a message that violates the protocol specification.

    Correct replicas raise (and then contain) this when validating input from
    potentially Byzantine peers; it never crashes the simulation, it is
    recorded by the offending replica's monitor instead.
    """


class OptimizationError(ReproError):
    """The overlay-tree optimizer could not produce a feasible tree."""


class WorkloadError(ConfigurationError):
    """A workload specification is inconsistent."""
