"""ByzCast: the Byzantine fault-tolerant atomic multicast protocol (§III).

Public surface:

* :class:`~repro.core.tree.OverlayTree` — the group overlay tree (reach,
  children, lowest common ancestor, heights).
* :class:`~repro.core.node.ByzCastApplication` — Algorithm 1, run as the
  replicated application of every group.
* :class:`~repro.core.client.MulticastClient` — the ``a-multicast`` client.
* :class:`~repro.core.deployment.ByzCastDeployment` — builds a whole system
  (groups, tree, network) in one simulation.
"""

from repro.core.tree import OverlayTree
from repro.core.messages import WireMulticast, MulticastReply
from repro.core.relay import QuorumMerge
from repro.core.node import ByzCastApplication
from repro.core.client import MulticastClient
from repro.core.deployment import ByzCastDeployment, GroupSpec
from repro.core.invariants import (
    check_acyclic_order,
    check_agreement,
    check_all,
    check_integrity,
    check_prefix_order,
    check_validity,
)

__all__ = [
    "OverlayTree",
    "WireMulticast",
    "MulticastReply",
    "QuorumMerge",
    "ByzCastApplication",
    "MulticastClient",
    "ByzCastDeployment",
    "GroupSpec",
    "check_agreement",
    "check_integrity",
    "check_validity",
    "check_prefix_order",
    "check_acyclic_order",
    "check_all",
]
