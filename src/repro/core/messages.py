"""Application-level wire messages of ByzCast.

A multicast travels the tree as a :class:`WireMulticast` — the command
carried inside the :class:`~repro.bcast.messages.Request` of each group's
atomic broadcast.  It is signed once, by the originating client, over the
message identity + destinations + payload; every group at which the message
*enters* the tree (its lca) verifies this signature, so a Byzantine server
cannot fabricate multicasts on behalf of clients (Integrity, §II-B).

Destination groups answer the originating client with
:class:`MulticastReply`; the client accepts a group's delivery once ``f + 1``
of its replicas replied (§IV, Fig. 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

# Read-tier wire messages live with the broadcast layer (reads are a
# per-group discipline, not a tree-wide one) but are part of the public
# client-facing message surface, so they are re-exported here.
from repro.bcast.messages import ReadReply, ReadRequest  # noqa: F401
from repro.crypto.signatures import Signature
from repro.types import Destination, GroupId, MessageId, MulticastMessage


@dataclass(frozen=True)
class WireMulticast:
    """The serialized form of an atomically multicast message.

    ``dst`` is kept sorted so the canonical form (and therefore the client
    signature and digests) is deterministic.
    """

    sender: str
    seq: int
    dst: Tuple[str, ...]
    payload: Tuple
    signature: Optional[Signature] = None

    @classmethod
    def from_message(cls, message: MulticastMessage,
                     signature: Optional[Signature] = None) -> "WireMulticast":
        return cls(
            sender=str(message.mid.sender),
            seq=message.mid.seq,
            dst=tuple(sorted(message.dst)),
            payload=tuple(message.payload),
            signature=signature,
        )

    def to_message(self) -> MulticastMessage:
        from repro.types import ClientId  # local import to avoid cycle noise

        return MulticastMessage(
            mid=MessageId(ClientId(self.sender), self.seq),
            dst=frozenset(GroupId(g) for g in self.dst),
            payload=self.payload,
        )

    def signed_part(self) -> Tuple:
        """The tuple covered by the originating client's signature.

        Built once and reused so the ``f + 1`` duplicate verifications of a
        relayed multicast hit the identity-keyed verification cache.
        """
        cached = self.__dict__.get("_signed_part")
        if cached is None:
            cached = ("amcast", self.sender, self.seq, self.dst, self.payload)
            object.__setattr__(self, "_signed_part", cached)
        return cached

    def identity(self) -> Tuple:
        """Content identity used for relay dedup/counting keys (reused)."""
        cached = self.__dict__.get("_identity")
        if cached is None:
            cached = (self.sender, self.seq, self.dst, self.payload)
            object.__setattr__(self, "_identity", cached)
        return cached


@dataclass(frozen=True)
class MembershipUpdate:
    """An ordered notice that another group's membership changed.

    The elasticity controller submits this to every group wired to a
    reconfigured group (its overlay parent and children) through the normal
    request path, so the update executes at one consensus boundary on every
    replica.  That ordering matters: the parent-relay quorum merge is
    *replicated* state (it is checkpointed), so refreshing it out-of-band at
    arbitrary per-replica execution points would let released messages
    interleave differently with ordered traffic across replicas — an
    agreement violation.  Authorization: only the executing group's own
    ``admin@<group>`` identity may carry it.
    """

    group: str
    replicas: Tuple[str, ...]
    f: int


@dataclass(frozen=True)
class TreeUpdate:
    """An ordered command switching the whole deployment to a new overlay.

    A tree change is a reconfiguration *every* group agrees on: the
    elasticity controller orders one ``TreeUpdate`` per group (same epoch,
    same shape) after draining client traffic, so each group adopts the new
    routing at one consensus boundary.  ``parents`` is the canonical sorted
    ``(child, parent)`` edge list of the new tree and ``epoch`` increases
    monotonically — replaying a checkpointed history re-applies updates
    idempotently, and a stale epoch is a no-op.  Like
    :class:`MembershipUpdate`, only the executing group's own
    ``admin@<group>`` identity may carry it (see docs/TREES.md).
    """

    epoch: int
    parents: Tuple[Tuple[str, str], ...]
    targets: Tuple[str, ...]


@dataclass(frozen=True)
class MulticastReply:
    """Per-replica delivery acknowledgement sent to the originating client.

    ``result`` optionally carries the application's (deterministic) output
    for this message at this group — e.g. the values read by a get.  The
    client accepts a group's result once ``f + 1`` replicas report it
    identically.
    """

    group: str
    replica: str
    sender: str
    seq: int
    result: Any = None
