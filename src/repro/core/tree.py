"""The ByzCast overlay tree (§III-B).

Nodes are group ids.  Leaves must be *target* groups (groups messages can be
addressed to); inner nodes are usually *auxiliary* groups, but — as the paper
notes at the end of §III-B — target groups may be inner nodes too, and a
tree may consist of target groups only.

The tree answers the structural queries of Algorithm 1 and of the optimizer:
``children``, ``parent``, ``reach`` (target groups in a subtree), ``lca`` of
a destination set, subtree ``height`` (the ``H(T, d)`` of §III-C, counted in
nodes: a leaf has height 1), and the set of groups involved in a multicast
(``P(T, d)``).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import TreeError


class OverlayTree:
    """An immutable rooted tree over group ids.

    Args:
        parents: mapping child-group → parent-group; exactly one group (the
            root) must be absent from the mapping's keys.
        targets: the target groups Γ (addressable destinations).  Every
            target must be a node; every leaf must be a target.
    """

    def __init__(self, parents: Mapping[str, str], targets: Iterable[str]) -> None:
        self._parent: Dict[str, str] = dict(parents)
        self.targets: FrozenSet[str] = frozenset(targets)
        nodes: Set[str] = set(self._parent) | set(self._parent.values()) | set(self.targets)
        if not nodes:
            raise TreeError("tree has no nodes")
        self.nodes: FrozenSet[str] = frozenset(nodes)

        roots = [n for n in nodes if n not in self._parent]
        if len(roots) != 1:
            raise TreeError(f"tree must have exactly one root, found {sorted(roots)}")
        self.root: str = roots[0]

        self._children: Dict[str, List[str]] = {n: [] for n in nodes}
        for child, parent in self._parent.items():
            if parent not in nodes:
                raise TreeError(f"parent {parent!r} of {child!r} is not a node")
            self._children[parent].append(child)
        for children in self._children.values():
            children.sort()

        self._depth: Dict[str, int] = {}
        self._assign_depths()
        self._reach: Dict[str, FrozenSet[str]] = {}
        self._height: Dict[str, int] = {}
        self._compute_reach_and_height(self.root)
        self._validate()

    # -- construction helpers -------------------------------------------------

    @classmethod
    def two_level(cls, targets: Sequence[str], root: str = "h1") -> "OverlayTree":
        """A root auxiliary group with all target groups as its children.

        This is the 2-level tree of the evaluation (§V-B3).
        """
        return cls({t: root for t in targets}, targets)

    @classmethod
    def three_level(
        cls,
        branches: Mapping[str, Sequence[str]],
        root: str = "h1",
    ) -> "OverlayTree":
        """A root over auxiliary branches, each owning some target groups.

        Args:
            branches: mapping auxiliary-group → its target-group children,
                e.g. ``{"h2": ["g1", "g2"], "h3": ["g3", "g4"]}``.
        """
        parents: Dict[str, str] = {}
        targets: List[str] = []
        for aux, leaf_targets in branches.items():
            parents[aux] = root
            for target in leaf_targets:
                parents[target] = aux
                targets.append(target)
        return cls(parents, targets)

    @classmethod
    def paper_tree(cls) -> "OverlayTree":
        """The Fig. 1(a) tree: h1 over h2{g1, g2} and h3{g3, g4}."""
        return cls.three_level({"h2": ["g1", "g2"], "h3": ["g3", "g4"]})

    @classmethod
    def balanced(
        cls,
        targets: Sequence[str],
        fanout: int = 8,
        aux_prefix: str = "h",
    ) -> "OverlayTree":
        """A balanced tree of auxiliary groups over many target groups.

        Built bottom-up: target groups are chunked ``fanout`` at a time
        under fresh auxiliary groups, then those auxiliaries are chunked in
        turn until a single root remains.  With ``len(targets) <= fanout``
        this degenerates to :meth:`two_level`.  Auxiliary names are
        ``{aux_prefix}1``, ``{aux_prefix}2``, ... in construction order
        (the root gets the highest number), so the same inputs always
        produce the same tree — scale scenarios stay deterministic.
        """
        targets = list(targets)
        if not targets:
            raise TreeError("need at least one target group")
        if fanout < 2:
            raise TreeError("fanout must be at least 2")
        if len(targets) == 1:
            return cls({}, targets)
        parents: Dict[str, str] = {}
        aux_count = 0
        level: List[str] = list(targets)
        while len(level) > 1:
            next_level: List[str] = []
            for start in range(0, len(level), fanout):
                aux_count += 1
                parent = f"{aux_prefix}{aux_count}"
                for node in level[start:start + fanout]:
                    parents[node] = parent
                next_level.append(parent)
            level = next_level
        return cls(parents, targets)

    # -- internal construction -------------------------------------------------

    def _assign_depths(self) -> None:
        for node in self.nodes:
            depth = 0
            cursor: Optional[str] = node
            seen = set()
            while cursor is not None and cursor != self.root:
                if cursor in seen:
                    raise TreeError(f"cycle detected through {cursor!r}")
                seen.add(cursor)
                cursor = self._parent.get(cursor)
                depth += 1
                if depth > len(self.nodes):
                    raise TreeError("parent chain longer than node count — cycle")
            if cursor is None:
                raise TreeError(f"node {node!r} is not connected to the root")
            self._depth[node] = depth

    def _compute_reach_and_height(self, node: str) -> Tuple[FrozenSet[str], int]:
        reach: Set[str] = {node} if node in self.targets else set()
        height = 1
        for child in self._children[node]:
            child_reach, child_height = self._compute_reach_and_height(child)
            reach |= child_reach
            height = max(height, child_height + 1)
        self._reach[node] = frozenset(reach)
        self._height[node] = height
        return self._reach[node], height

    def _validate(self) -> None:
        for target in self.targets:
            if target not in self.nodes:
                raise TreeError(f"target group {target!r} is not in the tree")
        for node in self.nodes:
            if not self._children[node] and node not in self.targets:
                raise TreeError(
                    f"leaf {node!r} is auxiliary — leaves must be target groups"
                )

    # -- queries ----------------------------------------------------------------

    def parent_edges(self) -> Tuple[Tuple[str, str], ...]:
        """Sorted ``(child, parent)`` edges — the canonical wire form.

        ``OverlayTree(dict(edges), targets)`` rebuilds an equal tree, which
        is how :class:`~repro.core.messages.TreeUpdate` ships a tree through
        ordered consensus and checkpoints.
        """
        return tuple(sorted(self._parent.items()))

    def parent(self, node: str) -> Optional[str]:
        """Parent group of ``node`` (None for the root)."""
        return self._parent.get(node)

    def children(self, node: str) -> Tuple[str, ...]:
        """Children of ``node`` in the tree (paper: ``children(x)``)."""
        return tuple(self._children[node])

    def reach(self, node: str) -> FrozenSet[str]:
        """Target groups reachable walking down from ``node`` (``reach(x)``)."""
        return self._reach[node]

    def depth(self, node: str) -> int:
        """Edges from the root to ``node``."""
        return self._depth[node]

    def height(self, node: str) -> int:
        """Nodes on the longest downward path from ``node`` (leaf = 1)."""
        return self._height[node]

    def is_target(self, node: str) -> bool:
        return node in self.targets

    def ancestors(self, node: str) -> Tuple[str, ...]:
        """Path root → ... → ``node``, inclusive."""
        path = [node]
        cursor = node
        while cursor != self.root:
            cursor = self._parent[cursor]
            path.append(cursor)
        return tuple(reversed(path))

    def lca(self, destination: Iterable[str]) -> str:
        """Lowest common ancestor group of a destination set (``lca(m.dst)``)."""
        groups = list(destination)
        if not groups:
            raise TreeError("destination set is empty")
        for group in groups:
            if group not in self.targets:
                raise TreeError(f"destination {group!r} is not a target group")
        paths = [self.ancestors(g) for g in groups]
        shortest = min(len(p) for p in paths)
        lca = self.root
        for level in range(shortest):
            step = paths[0][level]
            if all(path[level] == step for path in paths):
                lca = step
            else:
                break
        return lca

    def destination_height(self, destination: Iterable[str]) -> int:
        """``H(T, d)``: the height of the lca of ``destination`` (§III-C)."""
        return self.height(self.lca(destination))

    def involved_groups(self, destination: Iterable[str]) -> FrozenSet[str]:
        """``P(T, d)``: groups on the paths from lca(d) down to each group in d."""
        dst = set(destination)
        lca = self.lca(dst)
        involved: Set[str] = set()
        lca_depth = self._depth[lca]
        for group in dst:
            path = self.ancestors(group)
            involved.update(path[lca_depth:])
        return frozenset(involved)

    def route_children(self, node: str, destination: Iterable[str]) -> Tuple[str, ...]:
        """Children of ``node`` whose reach intersects the destination set.

        This is the forwarding rule of Algorithm 1, line 10.
        """
        dst = set(destination)
        return tuple(
            child for child in self._children[node] if self._reach[child] & dst
        )

    def subtree(self, node: str) -> FrozenSet[str]:
        """All groups in the subtree rooted at ``node`` (inclusive)."""
        members: Set[str] = set()
        stack = [node]
        while stack:
            cursor = stack.pop()
            members.add(cursor)
            stack.extend(self._children[cursor])
        return frozenset(members)

    def to_dot(self) -> str:
        """Graphviz DOT rendering (targets as boxes, auxiliaries as ovals)."""
        lines = ["digraph overlay {"]
        for node in sorted(self.nodes):
            shape = "box" if node in self.targets else "ellipse"
            lines.append(f'  "{node}" [shape={shape}];')
        for child in sorted(self.nodes):
            parent = self._parent.get(child)
            if parent is not None:
                lines.append(f'  "{parent}" -> "{child}";')
        lines.append("}")
        return "\n".join(lines)

    # -- misc ----------------------------------------------------------------------

    @property
    def auxiliaries(self) -> FrozenSet[str]:
        """Groups that are not targets (Λ)."""
        return self.nodes - self.targets

    def __contains__(self, node: str) -> bool:
        return node in self.nodes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OverlayTree(root={self.root!r}, nodes={len(self.nodes)})"
