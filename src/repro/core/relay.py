"""Order-preserving f+1 confirmation of relayed messages (Algorithm 1, line 9).

Algorithm 1 says a group handles a message from its parent once it has
delivered it ``f + 1`` times — proof that at least one *correct* parent
replica relayed it.  Implemented naively ("act when the (f+1)-th copy is
ordered"), the rule is not order-preserving: up to ``f`` Byzantine parent
replicas can relay ``m'`` while withholding ``m``, making the (f+1)-th copy
of ``m'`` arrive before the (f+1)-th copy of ``m`` in one child group and
after it in a sibling — violating the order the parent induced (the
invariant behind Lemma 4 / prefix order).

:class:`QuorumMerge` implements the rule the correctness argument actually
needs: one FIFO queue per parent replica, and a message is *released* only
when it sits at the **head** of at least ``f + 1`` queues.  All ``2f + 1``
correct parents relay the same sequence (their group's delivery order), so
a message reaches f+1 heads exactly in that sequence's order: Byzantine
queues can never outvote the correct heads.  Released order therefore equals
the parent's order at every child, restoring Lemma 4 under Byzantine
relays.  ``tests/core/test_relay.py`` contains the adversarial scenario.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Hashable, Iterable, List, Set, Tuple

from repro.crypto.digest import canonical_bytes


class QuorumMerge:
    """Per-sender FIFO merge releasing values confirmed by f+1 queue heads.

    Args:
        senders: the authorized relayers (the parent group's replicas).
        threshold: number of distinct queue heads required (``f + 1``).
    """

    def __init__(self, senders: Iterable[str], threshold: int) -> None:
        self.senders = frozenset(senders)
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        if threshold > len(self.senders):
            raise ValueError("threshold cannot exceed the number of senders")
        self.threshold = threshold
        self._queues: Dict[str, Deque[Tuple[Hashable, Any]]] = {
            sender: deque() for sender in self.senders
        }
        self._released: Set[Hashable] = set()

    def push(self, sender: str, key: Hashable, value: Any) -> List[Any]:
        """Record that ``sender``'s copy of ``key`` was ordered locally.

        Returns the values newly released by this push, in release order.
        Pushes from unknown senders are ignored (the caller should have
        validated membership; this is defense in depth).
        """
        if sender not in self._queues:
            return []
        if key in self._released:
            return []
        self._queues[sender].append((key, value))
        return self._drain()

    def _drain(self) -> List[Any]:
        released: List[Any] = []
        progress = True
        while progress:
            progress = False
            heads: Dict[Hashable, List[str]] = {}
            for sender, queue in self._queues.items():
                while queue and queue[0][0] in self._released:
                    queue.popleft()
                if queue:
                    heads.setdefault(queue[0][0], []).append(sender)
            for key, supporters in heads.items():
                if len(supporters) >= self.threshold:
                    value = self._queues[supporters[0]][0][1]
                    self._released.add(key)
                    for sender in supporters:
                        self._queues[sender].popleft()
                    released.append(value)
                    progress = True
                    break  # re-scan heads after every release
        return released

    def update_members(self, senders: Iterable[str], threshold: int) -> List[Any]:
        """Adopt a new relayer membership (parent-group reconfiguration).

        Queues of retained senders survive (their relayed-but-unconfirmed
        prefixes stay valid), removed senders' queues are dropped, and new
        senders start with empty queues.  The released set is kept so
        already-confirmed messages are never re-released.  Returns any
        values the membership change itself unblocks (e.g. a withheld
        message whose only dissenting queue belonged to a removed replica).
        """
        new_senders = frozenset(senders)
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        if threshold > len(new_senders):
            raise ValueError("threshold cannot exceed the number of senders")
        self.senders = new_senders
        self.threshold = threshold
        self._queues = {
            sender: self._queues.get(sender, deque())
            for sender in new_senders
        }
        return self._drain()

    def is_released(self, key: Hashable) -> bool:
        return key in self._released

    def pending_counts(self) -> Dict[str, int]:
        """Queue depths per sender (diagnostics)."""
        return {sender: len(queue) for sender, queue in self._queues.items()}

    # -- checkpointing ------------------------------------------------------

    def snapshot(self) -> Tuple:
        """Deterministic, canonicalizable capture of the merge state.

        Queues are keyed by sender name (sorted); the released set is
        sorted by canonical bytes because identity keys from distinct
        senders need not be mutually orderable.  Replicas that ordered the
        same request prefix hold identical merge state (pushes happen only
        during ordered execution), so this snapshot is digest-stable.
        """
        queues = tuple(
            (sender, tuple(self._queues[sender]))
            for sender in sorted(self._queues)
        )
        released = tuple(sorted(self._released, key=canonical_bytes))
        return (queues, released)

    def restore(self, state: Tuple) -> None:
        """Adopt a peer's :meth:`snapshot` (membership must match)."""
        queues, released = state
        self._queues = {sender: deque() for sender in self.senders}
        for sender, entries in queues:
            if sender in self._queues:
                self._queues[sender] = deque(entries)
        self._released = set(released)
