"""Algorithm 1: the ByzCast logic, run as each group's replicated service.

Every replica of every group (target and auxiliary) executes a
:class:`ByzCastApplication`.  The surrounding atomic broadcast delivers
ordered :class:`~repro.bcast.messages.Request` objects whose command is a
:class:`~repro.core.messages.WireMulticast`; this application decides, per
Algorithm 1, whether the message

* entered the tree here (``k = 0``: the sender is a client and this group is
  ``lca(m.dst)`` — the client's signature is verified), or
* was relayed by the parent group (the sender is one of the parent's
  replicas — it is confirmed through the f+1 quorum-head merge of
  :class:`~repro.core.relay.QuorumMerge`),

and then *acts* on it: re-broadcast into every child whose reach intersects
``m.dst`` (line 10-11) and a-deliver it if this group is a destination
(line 12-14, with the ``A-delivered`` set preventing duplicates).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from dataclasses import replace as dataclass_replace

from repro.bcast.app import Application, ExecutionContext
from repro.bcast.client import GroupProxy
from repro.bcast.config import BroadcastConfig
from repro.bcast.messages import Reply, Request
from repro.bcast.reconfig import admin_identity
from repro.core.messages import (
    MembershipUpdate,
    MulticastReply,
    TreeUpdate,
    WireMulticast,
)
from repro.core.tree import OverlayTree
from repro.crypto.digest import canonical_bytes
from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import verify
from repro.types import Delivery, MulticastMessage

DeliverCallback = Callable[[MulticastMessage, ExecutionContext], None]


class ByzCastApplication(Application):
    """One replica's ByzCast protocol state (Algorithm 1)."""

    #: first retransmission delay of the relay proxies into child groups;
    #: class-level so harnesses (e.g. the chaos soak) can tighten it without
    #: threading a parameter through every deployment builder.
    relay_retransmit_timeout: Optional[float] = 4.0

    def __init__(
        self,
        group_id: str,
        tree: OverlayTree,
        group_configs: Mapping[str, BroadcastConfig],
        registry: KeyRegistry,
        on_deliver: Optional[DeliverCallback] = None,
        send_client_replies: bool = True,
        accept_any_ancestor: bool = False,
        on_snapshot: Optional[Callable[[], Any]] = None,
        on_restore: Optional[Callable[[Any], None]] = None,
        on_read: Optional[Callable[[Any], Any]] = None,
        on_snapshot_read: Optional[Callable[[Any], Any]] = None,
    ) -> None:
        if group_id not in tree:
            raise ValueError(f"group {group_id!r} is not in the overlay tree")
        self.group_id = group_id
        self.tree = tree
        self.group_configs = dict(group_configs)
        self.registry = registry
        self.on_deliver = on_deliver
        #: optional hooks capturing/restoring the state ``on_deliver``
        #: mutates, so checkpoints cover the business-level state machine
        #: too (see :meth:`snapshot`).
        self.on_snapshot = on_snapshot
        self.on_restore = on_restore
        #: optional read-tier hooks: ``on_read`` answers an unordered read
        #: from the live applied business state, ``on_snapshot_read`` from
        #: the state as of the last checkpoint (see docs/READS.md); both
        #: must be pure functions of replicated state.
        self.on_read = on_read
        self.on_snapshot_read = on_snapshot_read
        self.send_client_replies = send_client_replies
        #: ByzCast requires clients to enter at lca(m.dst) (partial
        #: genuineness); the non-genuine Baseline lets clients enter at any
        #: ancestor of the destinations (in practice: the root).
        self.accept_any_ancestor = accept_any_ancestor

        self.config = self.group_configs[group_id]
        parent = tree.parent(group_id)
        self._parent_replicas: Tuple[str, ...] = ()
        self._merge = None
        if parent is not None:
            parent_config = self.group_configs[parent]
            self._parent_replicas = parent_config.replicas
            from repro.core.relay import QuorumMerge

            self._merge = QuorumMerge(parent_config.replicas, parent_config.f + 1)

        #: monotonically increasing overlay epoch — bumped by each ordered
        #: :class:`~repro.core.messages.TreeUpdate` (replicated state)
        self.tree_epoch = 0
        #: quorum merges of *former* parents still draining relayed copies
        #: after a tree switch: list of ``(parent_gid, merge)``.  The switch
        #: barrier drains client traffic first, so these are normally empty
        #: moments after a switch; they stay registered so a straggling
        #: correct old-parent replica can still complete an f+1 release.
        self._prev_merges: List[Tuple[str, Any]] = []
        self._child_proxies: Dict[str, GroupProxy] = {}
        self._acted: set = set()
        self._a_delivered: set = set()
        #: chronological record of local a-deliver events (tests/metrics)
        self.deliveries: List[Delivery] = []
        #: a-delivery count as of the last checkpoint — the default
        #: snapshot-read answer (mirrors the stable state, not the live one)
        self._stable_delivered = 0

    # ------------------------------------------------------------- execution

    def execute(self, request: Request, ctx: ExecutionContext) -> Any:
        wire = request.command
        if isinstance(wire, MembershipUpdate):
            return self._apply_membership_update(request, wire, ctx)
        if isinstance(wire, TreeUpdate):
            return self._apply_tree_update(request, wire, ctx)
        if not isinstance(wire, WireMulticast):
            return ("error", "not a multicast")
        problem = self._validate_wire(wire)
        if problem is not None:
            ctx.monitor.record(ctx.replica_name, "byzcast.invalid_wire", reason=problem)
            return ("error", problem)
        # Participation record for genuineness audits (one per ordered copy).
        ctx.monitor.record(ctx.replica_name, "byzcast.executed_wire",
                           origin=wire.sender, seq=wire.seq,
                           dst=",".join(wire.dst))

        if request.sender in self._parent_replicas:
            assert self._merge is not None
            for released in self._merge.push(request.sender, wire.identity(), wire):
                self._act(released, ctx)
            return ("ack",)

        # A straggling relay from a *former* parent (the tree switched while
        # its copy was in flight): feed the retained drain merge so slow
        # correct replicas can still complete an f+1 release.  Replica names
        # embed the group id, so the sender sets are disjoint.
        for __, merge in self._prev_merges:
            if request.sender in merge.senders:
                for released in merge.push(request.sender, wire.identity(), wire):
                    self._act(released, ctx)
                return ("ack",)

        # Direct submission: must enter the tree at the lca (or, for the
        # non-genuine Baseline, any ancestor) and carry a valid client
        # signature (Integrity: only genuinely a-multicast messages).
        if self.accept_any_ancestor:
            entry_ok = set(wire.dst) <= self.tree.reach(self.group_id)
        else:
            entry_ok = self.tree.lca(wire.dst) == self.group_id
        if not entry_ok:
            ctx.monitor.record(ctx.replica_name, "byzcast.wrong_entry_group",
                               sender=request.sender)
            return ("error", "not a valid entry group for the destination set")
        if not self._origin_signature_valid(wire):
            ctx.monitor.record(ctx.replica_name, "byzcast.bad_origin_signature",
                               sender=request.sender)
            return ("error", "invalid origin signature")
        self._act(wire, ctx)
        return ("ack",)

    def _apply_membership_update(self, request: Request,
                                 update: MembershipUpdate,
                                 ctx: ExecutionContext) -> Any:
        """Adopt a neighbouring group's reconfigured membership (ordered).

        Executes at one consensus boundary on every replica of this group,
        so the relay wiring that captured construction-time membership —
        child proxies into ``update.group`` and, when it is our overlay
        parent, the authorized-relayer set plus the f+1 quorum-head merge —
        changes at the same logical point everywhere.  Messages the merge
        releases *because* of the change (a removed dissenting queue) are
        acted on right here, inside ordered execution.
        """
        if request.sender != admin_identity(self.group_id):
            ctx.monitor.record(ctx.replica_name, "byzcast.membership_denied",
                               sender=request.sender)
            return ("error", "membership update denied")
        old = self.group_configs.get(update.group)
        if old is None:
            return ("error", f"unknown group {update.group!r}")
        try:
            config = dataclass_replace(old, replicas=tuple(update.replicas),
                                       f=update.f)
        except Exception:
            return ("error", "invalid membership")
        self.group_configs[update.group] = config
        proxy = self._child_proxies.get(update.group)
        if proxy is not None:
            proxy.update_replicas(config.replicas, config.f)
        if update.group == self.tree.parent(self.group_id):
            assert self._merge is not None
            self._parent_replicas = config.replicas
            for released in self._merge.update_members(config.replicas,
                                                       config.f + 1):
                self._act(released, ctx)
        # A former parent reconfiguring mid-drain must not strand its
        # retained merge on departed replica queues.
        for parent_gid, merge in self._prev_merges:
            if update.group == parent_gid:
                for released in merge.update_members(config.replicas,
                                                     config.f + 1):
                    self._act(released, ctx)
        ctx.monitor.record(ctx.replica_name, "byzcast.membership_update",
                           group=update.group,
                           members=",".join(update.replicas))
        return ("ok", "membership", update.group, tuple(update.replicas))

    def _apply_tree_update(self, request: Request, update: TreeUpdate,
                           ctx: ExecutionContext) -> Any:
        """Adopt a new overlay tree (ordered; see docs/TREES.md).

        Executes at one consensus boundary on every replica of this group,
        so routing (``route_children``), entry validation (``lca``) and the
        parent quorum merge all flip at the same logical point everywhere —
        the same discipline as :meth:`_apply_membership_update`.  A stale or
        replayed epoch is a no-op, which keeps checkpoint-log replay (and
        joiners catching up through a switch) idempotent.
        """
        if request.sender != admin_identity(self.group_id):
            ctx.monitor.record(ctx.replica_name, "byzcast.tree_update_denied",
                               sender=request.sender)
            return ("error", "tree update denied")
        if update.epoch <= self.tree_epoch:
            return ("ok", "tree", self.tree_epoch)
        try:
            tree = OverlayTree(dict(update.parents), update.targets)
        except Exception as exc:
            return ("error", f"invalid tree: {exc}")
        if self.group_id not in tree:
            # Group join/leave travels through membership elasticity, not
            # tree updates: a switch may rewire every edge but must keep
            # this group a node.
            return ("error", "tree update drops the executing group")
        for gid in tree.nodes:
            if gid not in self.group_configs:
                return ("error", f"unknown group {gid!r} in tree update")
        old_parent = self.tree.parent(self.group_id)
        new_parent = tree.parent(self.group_id)
        self.tree = tree
        self.tree_epoch = update.epoch
        if new_parent != old_parent:
            from repro.core.relay import QuorumMerge

            if self._merge is not None:
                # Keep the old merge draining: straggling relays from the
                # former parent may still need f+1 confirmation.
                self._prev_merges.append((old_parent, self._merge))
            if new_parent is not None:
                config = self.group_configs[new_parent]
                self._parent_replicas = config.replicas
                self._merge = QuorumMerge(config.replicas, config.f + 1)
            else:
                self._parent_replicas = ()
                self._merge = None
        ctx.monitor.record(ctx.replica_name, "byzcast.tree_update",
                           epoch=update.epoch,
                           parent=new_parent or "(root)")
        return ("ok", "tree", update.epoch)

    def _validate_wire(self, wire: WireMulticast) -> Optional[str]:
        if not wire.dst:
            return "empty destination set"
        if list(wire.dst) != sorted(set(wire.dst)):
            return "destinations must be sorted and unique"
        for group in wire.dst:
            if not self.tree.is_target(group):
                return f"unknown target group {group!r}"
        involved = self.group_id in self.tree.involved_groups(wire.dst)
        if self.accept_any_ancestor:
            involved = involved or set(wire.dst) <= self.tree.reach(self.group_id)
        if not involved:
            return "this group is not involved in the destination set"
        return None

    def _origin_signature_valid(self, wire: WireMulticast) -> bool:
        if wire.signature is None or wire.signature.signer != wire.sender:
            return False
        return verify(self.registry, wire.signed_part(), wire.signature)

    # ------------------------------------------------------------------ act

    def _act(self, wire: WireMulticast, ctx: ExecutionContext) -> None:
        """Forward down the tree and a-deliver locally (Algorithm 1, 10-14)."""
        key = wire.identity()
        if key in self._acted:
            return
        self._acted.add(key)
        for child in self.tree.route_children(self.group_id, wire.dst):
            self._relay(child, wire, ctx)
        if self.group_id in wire.dst and key not in self._a_delivered:
            self._a_delivered.add(key)
            self._a_deliver(wire, ctx)

    def _relay(self, child: str, wire: WireMulticast, ctx: ExecutionContext) -> None:
        proxy = self._child_proxy(child, ctx)
        cost = self.config.costs.relay_per_dest * len(proxy.replicas)
        # The CPU queue is FIFO, so relays are submitted (and numbered by the
        # proxy) in act order — preserving FIFO into the child group.
        ctx.replica.work(cost, lambda: proxy.submit(wire))
        ctx.monitor.record(ctx.replica_name, "byzcast.relay", child=child)

    def _child_proxy(self, child: str, ctx: ExecutionContext) -> GroupProxy:
        if child not in self._child_proxies:
            child_config = self.group_configs[child]
            self._child_proxies[child] = GroupProxy(
                owner=ctx.replica,
                group_id=child,
                replicas=child_config.replicas,
                f=child_config.f,
                registry=self.registry,
                retransmit_timeout=self.relay_retransmit_timeout,
            )
        return self._child_proxies[child]

    def _a_deliver(self, wire: WireMulticast, ctx: ExecutionContext) -> None:
        message = wire.to_message()
        self.deliveries.append(
            Delivery(
                time=ctx.time,
                process=ctx.replica_name,
                group=self.group_id,
                message=message,
            )
        )
        ctx.monitor.record(ctx.replica_name, "byzcast.a_deliver",
                           sender=wire.sender, seq=wire.seq)
        result = None
        if self.on_deliver is not None:
            result = self.on_deliver(message, ctx)
        if self.send_client_replies:
            reply = MulticastReply(
                group=self.group_id,
                replica=ctx.replica_name,
                sender=wire.sender,
                seq=wire.seq,
                result=result,
            )
            ctx.replica.send(wire.sender, reply)

    # ------------------------------------------------------------------ reads

    def read(self, payload: Any) -> Any:
        """Answer an unordered read from the live applied state.

        Must be a pure function of the executed prefix: two correct
        replicas with the same applied cid must return byte-identical
        answers, or the f+1 read quorum can never form.  The default
        answers with the a-delivery count at this group — deterministic in
        the prefix and useful as a progress probe.
        """
        if self.on_read is not None:
            return self.on_read(payload)
        return ("deliveries", len(self.deliveries))

    def snapshot_read(self, payload: Any) -> Any:
        """Answer a read from the last *stable* (checkpointed) state."""
        if self.on_snapshot_read is not None:
            return self.on_snapshot_read(payload)
        return ("deliveries", self._stable_delivered)

    # ---------------------------------------------------------------- replies

    def handle_reply(self, src: str, reply: Reply) -> None:
        """Route child-group acks to the relay proxies (retransmission)."""
        for proxy in self._child_proxies.values():
            if proxy.handle_reply(src, reply):
                return

    # --------------------------------------------------------- checkpointing

    @property
    def checkpointable(self) -> bool:
        """Whether checkpoints would capture the *whole* replica state.

        When ``on_deliver`` feeds an external state machine, a checkpoint
        restore would skip deliveries that machine never saw — so
        checkpointing is enabled only if ``on_snapshot``/``on_restore``
        cover that external state (or there is none).
        """
        return self.on_deliver is None or (
            self.on_snapshot is not None and self.on_restore is not None
        )

    def snapshot(self) -> Tuple:
        """Deterministic capture of the Algorithm-1 state at one cid.

        Covers the acted/a-delivered dedup sets, the parent quorum-merge
        queues, the a-delivered message sequence, and (via ``on_snapshot``)
        the business state the delivery callback maintains.  Dedup keys are
        sorted by canonical bytes — identity tuples from different origins
        need not be mutually orderable.  Child relay proxies are *not*
        captured: their retransmission state is per-replica (timers, local
        sequence numbers), and a restored replica skipping some relays is
        exactly the fault the f+1 quorum-head merge already tolerates.
        """
        acted = tuple(sorted(self._acted, key=canonical_bytes))
        a_delivered = tuple(sorted(self._a_delivered, key=canonical_bytes))
        # The merge's membership is itself replicated state under elastic
        # membership (an ordered MembershipUpdate changes it), so the
        # snapshot carries (senders, threshold) alongside the queue state.
        merge = None
        if self._merge is not None:
            merge = (tuple(sorted(self._merge.senders)), self._merge.threshold,
                     self._merge.snapshot())
        delivered = tuple(record.message for record in self.deliveries)
        # The checkpoint boundary is a deterministic cid, so advancing the
        # stable-read mirror here keeps it identical across replicas.
        self._stable_delivered = len(delivered)
        payload = self.on_snapshot() if self.on_snapshot is not None else None
        # Neighbour membership is replicated state under elastic membership
        # (it changes only through ordered MembershipUpdates), so the
        # snapshot carries every group's (replicas, f): a joiner restoring
        # this checkpoint must relay to the membership its epoch agreed on,
        # not whatever the membership was when the joiner was spawned.
        configs = tuple(
            (gid, tuple(config.replicas), config.f)
            for gid, config in sorted(self.group_configs.items())
        )
        # The overlay itself is replicated state under adaptive trees (an
        # ordered TreeUpdate changes it): a joiner restoring a post-switch
        # checkpoint must route on the tree its epoch agreed on, drain
        # merges included.
        drains = tuple(
            (parent_gid, tuple(sorted(m.senders)), m.threshold, m.snapshot())
            for parent_gid, m in self._prev_merges
        )
        tree_state = (self.tree_epoch, self.tree.parent_edges(),
                      tuple(sorted(self.tree.targets)), drains)
        return ("byzcast", acted, a_delivered, merge, delivered, payload,
                configs, tree_state)

    def restore(self, state: Tuple) -> None:
        """Adopt a peer's :meth:`snapshot` (checkpoint install path)."""
        from repro.core.relay import QuorumMerge

        (__, acted, a_delivered, merge, delivered, payload, configs,
         tree_state) = state
        self._acted = set(acted)
        self._a_delivered = set(a_delivered)
        for gid, replicas, group_f in configs:
            known = self.group_configs.get(gid)
            if known is None:
                continue
            config = dataclass_replace(known, replicas=tuple(replicas),
                                       f=group_f)
            self.group_configs[gid] = config
            proxy = self._child_proxies.get(gid)
            if proxy is not None:
                proxy.update_replicas(config.replicas, config.f)
        self.config = self.group_configs[self.group_id]
        # Adopt the snapshot's overlay *before* the merge state: the merge
        # queues belong to the snapshot's parent, which after a switch is
        # not necessarily this replica's construction-time parent.
        tree_epoch, edges, targets, drains = tree_state
        if tree_epoch != self.tree_epoch:
            self.tree = OverlayTree(dict(edges), targets)
            self.tree_epoch = tree_epoch
            parent = self.tree.parent(self.group_id)
            if parent is not None:
                config = self.group_configs[parent]
                self._parent_replicas = config.replicas
                self._merge = QuorumMerge(config.replicas, config.f + 1)
            else:
                self._parent_replicas = ()
                self._merge = None
        if self._merge is not None and merge is not None:
            senders, threshold, queue_state = merge
            self._parent_replicas = tuple(senders)
            self._merge.update_members(senders, threshold)
            self._merge.restore(queue_state)
        self._prev_merges = []
        for parent_gid, senders, threshold, queue_state in drains:
            drain = QuorumMerge(senders, threshold)
            drain.restore(queue_state)
            self._prev_merges.append((parent_gid, drain))
        # Rebuild the delivery record so the a-delivery *sequence* survives
        # the restore; timestamps/process are local observations, not
        # replicated state, so they reflect the restore itself.
        self.deliveries = [
            Delivery(time=0.0, process="<checkpoint>", group=self.group_id,
                     message=message)
            for message in delivered
        ]
        self._stable_delivered = len(delivered)
        if self.on_restore is not None:
            self.on_restore(payload)

    # ------------------------------------------------------------ inspection

    def delivered_messages(self) -> List[MulticastMessage]:
        """Messages a-delivered here, in local delivery order."""
        return [record.message for record in self.deliveries]
