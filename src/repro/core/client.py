"""The atomic multicast client (``a-multicast``, §IV client behaviour).

A client signs its message, submits it to every replica of the lowest
common ancestor group of the destination set, and considers it delivered
once ``f + 1`` replicas of **each** destination group acknowledged delivery
(at most ``f`` per group are faulty, so one correct replica per group
vouches).  Latency is measured from submission to that last confirmation —
the figure the paper's latency plots report.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as dataclass_replace
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.bcast.client import GroupProxy, ReadProxy
from repro.bcast.config import BroadcastConfig
from repro.bcast.messages import ReadReply, Reply
from repro.core.messages import MulticastReply, WireMulticast
from repro.core.tree import OverlayTree
from repro.crypto.digest import digest
from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import sign
from repro.env import Actor, Monitor, RuntimeOrClock
from repro.types import ClientId, Destination, MessageId, MulticastMessage, destination

CompletionCallback = Callable[[MulticastMessage, float], None]
ReadCallback = Callable[["ReadOutcome"], None]

#: read modes a client may request (see docs/READS.md)
READ_MODES = ("ordered", "optimistic", "snapshot")


@dataclass(frozen=True)
class ReadOutcome:
    """What one ``aread`` returned and how it got there.

    ``fallback`` is True when the optimistic quorum never formed and the
    value came from a full ordered multicast instead (that path is
    linearizable, so the staleness contract is trivially met).  ``cid`` is
    the consensus id the accepted quorum vouched for (-1 on fallback and
    for pre-first-checkpoint snapshot reads); ``voters`` are the replicas
    whose matching replies formed the quorum (empty on fallback).
    """

    group: str
    mode: str
    rid: int
    result: object
    cid: int
    fallback: bool
    latency: float
    voters: FrozenSet[str] = frozenset()


@dataclass
class _InFlightRead:
    """Book-keeping for one not-yet-resolved aread."""

    group: str
    mode: str
    payload: Tuple
    issued_at: float
    callback: Optional[ReadCallback]


@dataclass
class _InFlight:
    """Book-keeping for one not-yet-confirmed multicast."""

    message: MulticastMessage
    sent_at: float
    needed: FrozenSet[str]
    #: per group: result-digest -> replicas vouching for that result
    votes: Dict[str, Dict[bytes, Set[str]]] = field(default_factory=dict)
    #: per group: candidate results by digest
    candidates: Dict[str, Dict[bytes, object]] = field(default_factory=dict)
    confirmed: Set[str] = field(default_factory=set)
    #: per group: the f+1-confirmed application result
    group_results: Dict[str, object] = field(default_factory=dict)
    callback: Optional[CompletionCallback] = None
    #: where/with which proxy seq the wire request entered the tree, so
    #: accepted (quorum-confirmed) progress can reset that proxy's backoff
    entry_group: str = ""
    entry_seq: int = 0


class MulticastClient(Actor):
    """An ``a-multicast`` endpoint.

    Args:
        name: unique endpoint name; doubles as the message sender identity,
            so it must match the key used to sign (the registry derives keys
            per identity automatically).
        tree: the deployment's overlay tree.
        group_configs: all group configurations (for replica membership).
        on_complete: default callback invoked as ``(message, latency)`` when
            a multicast is confirmed by all destination groups.
    """

    def __init__(
        self,
        name: str,
        loop: RuntimeOrClock,
        tree: OverlayTree,
        group_configs: Dict[str, BroadcastConfig],
        registry: KeyRegistry,
        monitor: Optional[Monitor] = None,
        on_complete: Optional[CompletionCallback] = None,
        retransmit_timeout: Optional[float] = 4.0,
        read_timeout: float = 1.0,
        read_quorum: Optional[int] = None,
    ) -> None:
        super().__init__(name, loop, monitor)
        self.tree = tree
        self.group_configs = dict(group_configs)
        self.registry = registry
        self.on_complete = on_complete
        self.retransmit_timeout = retransmit_timeout
        self.read_timeout = read_timeout
        #: test-only mutation guard: overrides the f+1 read quorum
        self._read_quorum = read_quorum
        self._proxies: Dict[str, GroupProxy] = {}
        self._read_proxies: Dict[Tuple[str, str], ReadProxy] = {}
        self._next_seq = 1
        self._next_read = 1
        self._inflight: Dict[Tuple[str, int], _InFlight] = {}
        self._inflight_reads: Dict[Tuple[str, str, int], _InFlightRead] = {}
        #: (message, latency) of every confirmed multicast, in completion order
        self.completions: List[Tuple[MulticastMessage, float]] = []
        #: (sender, seq) -> per-group confirmed application results
        self.results: Dict[Tuple[str, int], Dict[str, object]] = {}
        #: per (group, mode) monotone floor over accepted read cids (the
        #: session guarantee: this client's reads never travel back in time)
        self._read_high_water: Dict[Tuple[str, str], int] = {}
        #: every resolved read, in resolution order (chaos invariants audit
        #: the voters of non-fallback outcomes against replica read journals)
        self.read_log: List[ReadOutcome] = []
        self.reads_issued = 0
        self.reads_accepted = 0
        self.reads_fallback = 0
        #: optional :class:`repro.optimizer.traffic.TrafficCollector` — when
        #: attached, every submitted write notes (destination set, hops
        #: under the current tree); None costs nothing on the submit path
        self.traffic = None
        #: tree-switch barrier state (see docs/TREES.md): while paused, new
        #: writes are signed and sequenced immediately but their tree entry
        #: is deferred, so no message is ever in flight across two trees
        self._paused = False
        self._deferred: List[Tuple[WireMulticast, _InFlight]] = []

    # ------------------------------------------------------------------- api

    def amulticast(
        self,
        dst: Destination,
        payload: Tuple = (),
        callback: Optional[CompletionCallback] = None,
    ) -> MessageId:
        """Atomically multicast ``payload`` to the groups in ``dst``."""
        seq = self._next_seq
        self._next_seq += 1
        mid = MessageId(ClientId(self.name), seq)
        message = MulticastMessage(mid=mid, dst=frozenset(dst), payload=tuple(payload))
        unsigned = WireMulticast.from_message(message)
        signature = sign(self.registry, self.name, unsigned.signed_part())
        wire = WireMulticast.from_message(message, signature)

        entry = _InFlight(
            message=message,
            sent_at=self.loop.now,
            needed=frozenset(message.dst),
            callback=callback,
        )
        if self._paused:
            # Sequencing already happened (seq above), so the client's FIFO
            # order survives the deferral; entry-group resolution waits for
            # resume() and uses whatever tree is current *then*.
            self._deferred.append((wire, entry))
            self.monitor.record(self.name, "client.deferred", seq=seq)
            return mid
        self._enter_tree(wire, entry)
        return mid

    def _enter_tree(self, wire: WireMulticast, entry: _InFlight) -> None:
        message = entry.message
        seq = message.mid.seq
        entry_group = self._entry_group(message)
        entry.entry_group = entry_group
        self._inflight[(self.name, seq)] = entry
        if self.traffic is not None:
            self.traffic.note(message.dst,
                              self.tree.destination_height(message.dst))
        entry.entry_seq = self._proxy(entry_group).submit(wire)
        self.monitor.record(self.name, "client.amulticast",
                            seq=seq, dst=",".join(sorted(message.dst)))

    def aread(
        self,
        group: str,
        payload: Tuple = (),
        mode: str = "optimistic",
        callback: Optional[ReadCallback] = None,
    ) -> int:
        """Read from one destination group, bypassing consensus when safe.

        ``mode`` selects the staleness contract (``docs/READS.md``):

        * ``"optimistic"`` — unordered probe of the group's live applied
          state, accepted on f+1 matching (cid, digest) replies; falls back
          to a full ordered multicast on mismatch or timeout.
        * ``"snapshot"`` — same discipline over the last stable checkpoint
          (bounded staleness: at most ``checkpoint_interval`` commands).
        * ``"ordered"`` — skip the optimism and pay the full multicast.

        ``callback(outcome)`` fires exactly once with a
        :class:`ReadOutcome`.  Returns the read's round id.
        """
        if mode not in READ_MODES:
            raise ValueError(f"unknown read mode {mode!r}")
        rid = self._next_read
        self._next_read += 1
        self.reads_issued += 1
        entry = _InFlightRead(group=group, mode=mode, payload=tuple(payload),
                              issued_at=self.loop.now, callback=callback)
        key = (group, mode, rid)
        self._inflight_reads[key] = entry
        if mode == "ordered":
            self._read_fallback(key, entry)
            return rid
        proxy = self._read_proxy(group, mode)
        proxy.read(
            entry.payload, mode,
            on_accept=lambda cid, result, voters, k=key:
                self._read_accepted(k, cid, result, voters),
            on_exhausted=lambda k=key: self._read_exhausted(k),
        )
        self.monitor.record(self.name, "client.aread", group=group, mode=mode)
        return rid

    def _read_accepted(self, key: Tuple[str, str, int], cid: int,
                       result: object, voters: FrozenSet[str]) -> None:
        entry = self._inflight_reads.pop(key, None)
        if entry is None:
            return
        group, mode, rid = key
        floor_key = (group, mode)
        if cid > self._read_high_water.get(floor_key, -1):
            self._read_high_water[floor_key] = cid
        self.reads_accepted += 1
        outcome = ReadOutcome(
            group=group, mode=mode, rid=rid, result=result, cid=cid,
            fallback=False, latency=self.loop.now - entry.issued_at,
            voters=voters,
        )
        self.read_log.append(outcome)
        self.monitor.record(self.name, "client.read_accepted",
                            group=group, mode=mode, cid=cid)
        if entry.callback is not None:
            entry.callback(outcome)

    def _read_exhausted(self, key: Tuple[str, str, int]) -> None:
        entry = self._inflight_reads.get(key)
        if entry is None:
            return
        self.reads_fallback += 1
        self.monitor.record(self.name, "client.read_fallback",
                            group=entry.group, mode=entry.mode)
        self._read_fallback(key, entry)

    def _read_fallback(self, key: Tuple[str, str, int],
                       entry: _InFlightRead) -> None:
        """Resolve a read through the ordered path (always linearizable)."""
        group, mode, rid = key

        def finish(message: MulticastMessage, latency: float) -> None:
            inflight = self._inflight_reads.pop(key, None)
            if inflight is None:
                return
            mkey = (message.mid.sender, message.mid.seq)
            result = self.results.get(mkey, {}).get(group)
            outcome = ReadOutcome(
                group=group, mode=mode, rid=rid, result=result, cid=-1,
                fallback=(mode != "ordered"),
                latency=self.loop.now - inflight.issued_at,
            )
            self.read_log.append(outcome)
            if inflight.callback is not None:
                inflight.callback(outcome)

        self.amulticast(destination(group), payload=entry.payload,
                        callback=finish)

    def pending(self) -> int:
        """Operations submitted but not yet resolved (writes and reads)."""
        return len(self._inflight) + len(self._inflight_reads) + len(self._deferred)

    def pending_writes(self) -> int:
        """Writes actually *in the tree* — submitted and unconfirmed.

        Deferred (paused) writes do not count: the tree-switch barrier
        waits for this to reach zero, and deferred messages only enter the
        tree after the switch.
        """
        return len(self._inflight)

    # ---------------------------------------------------- tree-switch barrier

    def pause(self) -> None:
        """Hold new writes back (they queue in FIFO order; see resume)."""
        self._paused = True

    def resume(self) -> None:
        """Release writes deferred while paused, in original FIFO order."""
        self._paused = False
        deferred, self._deferred = self._deferred, []
        for wire, entry in deferred:
            self._enter_tree(wire, entry)

    def update_tree(self, tree: OverlayTree) -> None:
        """Adopt a new overlay tree (out-of-band safe for clients).

        Entry-group resolution happens per submit, so only messages
        submitted *after* this call route under the new tree — which is why
        the controller pauses clients and drains in-flight writes before
        ordering the :class:`~repro.core.messages.TreeUpdate` (docs/TREES.md).
        """
        self.tree = tree

    def _entry_group(self, message: MulticastMessage) -> str:
        """Where the message enters the tree: the lca of its destinations.

        The Baseline protocol's client overrides this to return the root.
        """
        return self.tree.lca(message.dst)

    # ---------------------------------------------------------------- wiring

    def _proxy(self, group_id: str) -> GroupProxy:
        if group_id not in self._proxies:
            config = self.group_configs[group_id]
            self._proxies[group_id] = GroupProxy(
                owner=self,
                group_id=group_id,
                replicas=config.replicas,
                f=config.f,
                registry=self.registry,
                retransmit_timeout=self.retransmit_timeout,
            )
        return self._proxies[group_id]

    def _read_proxy(self, group_id: str, mode: str) -> ReadProxy:
        key = (group_id, mode)
        if key not in self._read_proxies:
            config = self.group_configs[group_id]
            self._read_proxies[key] = ReadProxy(
                owner=self,
                group_id=group_id,
                replicas=config.replicas,
                f=config.f,
                read_timeout=self.read_timeout,
                quorum=self._read_quorum,
                min_cid=lambda mode, g=group_id:
                    self._read_high_water.get((g, mode), -1),
                mode=mode,
            )
        return self._read_proxies[key]

    def update_group(self, group_id: str, replicas: Tuple[str, ...],
                     f: int) -> None:
        """Adopt a reconfigured group's membership.

        Out-of-band delivery is safe for clients: vote counting is local
        (not replicated state), and replies from replicas outside the
        currently-known membership are simply ignored until the update
        lands.  Any live proxy into the group re-sprays its un-acked
        requests at the new membership.
        """
        config = self.group_configs.get(group_id)
        if config is None:
            return
        self.group_configs[group_id] = dataclass_replace(
            config, replicas=tuple(replicas), f=f)
        proxy = self._proxies.get(group_id)
        if proxy is not None:
            proxy.update_replicas(tuple(replicas), f)
        for (gid, __), read_proxy in self._read_proxies.items():
            if gid == group_id:
                read_proxy.update_replicas(tuple(replicas), f)

    def on_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, Reply):
            for proxy in self._proxies.values():
                if proxy.handle_reply(src, payload):
                    return
        elif isinstance(payload, ReadReply):
            for read_proxy in self._read_proxies.values():
                if read_proxy.handle_read_reply(src, payload):
                    return
        elif isinstance(payload, MulticastReply):
            self._handle_multicast_reply(src, payload)

    def _handle_multicast_reply(self, src: str, reply: MulticastReply) -> None:
        if reply.sender != self.name or reply.replica != src:
            return
        entry = self._inflight.get((reply.sender, reply.seq))
        if entry is None:
            return
        config = self.group_configs.get(reply.group)
        if config is None or src not in config.replicas:
            return
        if reply.group not in entry.needed or reply.group in entry.confirmed:
            return
        key = digest(("mreply", reply.result))
        votes = entry.votes.setdefault(reply.group, {}).setdefault(key, set())
        votes.add(src)
        entry.candidates.setdefault(reply.group, {})[key] = reply.result
        if len(votes) >= config.f + 1:
            entry.confirmed.add(reply.group)
            entry.group_results[reply.group] = entry.candidates[reply.group][key]
            # Backoff resets only on *accepted* progress — a full f+1 match
            # for a destination group, vouched by at least one correct
            # replica.  A bare reply must never count: a single Byzantine
            # fast-replier could emit those at will and pin the entry
            # proxy's retransmit backoff at its floor forever.
            entry_proxy = self._proxies.get(entry.entry_group)
            if entry_proxy is not None:
                entry_proxy.note_progress(entry.entry_seq)
            if entry.confirmed == entry.needed:
                self._complete((reply.sender, reply.seq), entry)

    def _complete(self, key: Tuple[str, int], entry: _InFlight) -> None:
        del self._inflight[key]
        latency = self.loop.now - entry.sent_at
        self.completions.append((entry.message, latency))
        #: confirmed per-group application results, by message id
        self.results[(entry.message.mid.sender, entry.message.mid.seq)] = dict(
            entry.group_results
        )
        self.monitor.record(self.name, "client.delivered", seq=key[1])
        if entry.callback is not None:
            entry.callback(entry.message, latency)
        if self.on_complete is not None:
            self.on_complete(entry.message, latency)
