"""The atomic multicast client (``a-multicast``, §IV client behaviour).

A client signs its message, submits it to every replica of the lowest
common ancestor group of the destination set, and considers it delivered
once ``f + 1`` replicas of **each** destination group acknowledged delivery
(at most ``f`` per group are faulty, so one correct replica per group
vouches).  Latency is measured from submission to that last confirmation —
the figure the paper's latency plots report.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as dataclass_replace
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.bcast.client import GroupProxy
from repro.bcast.config import BroadcastConfig
from repro.bcast.messages import Reply
from repro.core.messages import MulticastReply, WireMulticast
from repro.core.tree import OverlayTree
from repro.crypto.digest import digest
from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import sign
from repro.env import Actor, Monitor, RuntimeOrClock
from repro.types import ClientId, Destination, MessageId, MulticastMessage

CompletionCallback = Callable[[MulticastMessage, float], None]


@dataclass
class _InFlight:
    """Book-keeping for one not-yet-confirmed multicast."""

    message: MulticastMessage
    sent_at: float
    needed: FrozenSet[str]
    #: per group: result-digest -> replicas vouching for that result
    votes: Dict[str, Dict[bytes, Set[str]]] = field(default_factory=dict)
    #: per group: candidate results by digest
    candidates: Dict[str, Dict[bytes, object]] = field(default_factory=dict)
    confirmed: Set[str] = field(default_factory=set)
    #: per group: the f+1-confirmed application result
    group_results: Dict[str, object] = field(default_factory=dict)
    callback: Optional[CompletionCallback] = None


class MulticastClient(Actor):
    """An ``a-multicast`` endpoint.

    Args:
        name: unique endpoint name; doubles as the message sender identity,
            so it must match the key used to sign (the registry derives keys
            per identity automatically).
        tree: the deployment's overlay tree.
        group_configs: all group configurations (for replica membership).
        on_complete: default callback invoked as ``(message, latency)`` when
            a multicast is confirmed by all destination groups.
    """

    def __init__(
        self,
        name: str,
        loop: RuntimeOrClock,
        tree: OverlayTree,
        group_configs: Dict[str, BroadcastConfig],
        registry: KeyRegistry,
        monitor: Optional[Monitor] = None,
        on_complete: Optional[CompletionCallback] = None,
        retransmit_timeout: Optional[float] = 4.0,
    ) -> None:
        super().__init__(name, loop, monitor)
        self.tree = tree
        self.group_configs = dict(group_configs)
        self.registry = registry
        self.on_complete = on_complete
        self.retransmit_timeout = retransmit_timeout
        self._proxies: Dict[str, GroupProxy] = {}
        self._next_seq = 1
        self._inflight: Dict[Tuple[str, int], _InFlight] = {}
        #: (message, latency) of every confirmed multicast, in completion order
        self.completions: List[Tuple[MulticastMessage, float]] = []
        #: (sender, seq) -> per-group confirmed application results
        self.results: Dict[Tuple[str, int], Dict[str, object]] = {}

    # ------------------------------------------------------------------- api

    def amulticast(
        self,
        dst: Destination,
        payload: Tuple = (),
        callback: Optional[CompletionCallback] = None,
    ) -> MessageId:
        """Atomically multicast ``payload`` to the groups in ``dst``."""
        seq = self._next_seq
        self._next_seq += 1
        mid = MessageId(ClientId(self.name), seq)
        message = MulticastMessage(mid=mid, dst=frozenset(dst), payload=tuple(payload))
        unsigned = WireMulticast.from_message(message)
        signature = sign(self.registry, self.name, unsigned.signed_part())
        wire = WireMulticast.from_message(message, signature)

        entry_group = self._entry_group(message)
        self._inflight[(self.name, seq)] = _InFlight(
            message=message,
            sent_at=self.loop.now,
            needed=frozenset(message.dst),
            callback=callback,
        )
        self._proxy(entry_group).submit(wire)
        self.monitor.record(self.name, "client.amulticast",
                            seq=seq, dst=",".join(sorted(message.dst)))
        return mid

    def pending(self) -> int:
        """Multicasts submitted but not yet confirmed by all destinations."""
        return len(self._inflight)

    def _entry_group(self, message: MulticastMessage) -> str:
        """Where the message enters the tree: the lca of its destinations.

        The Baseline protocol's client overrides this to return the root.
        """
        return self.tree.lca(message.dst)

    # ---------------------------------------------------------------- wiring

    def _proxy(self, group_id: str) -> GroupProxy:
        if group_id not in self._proxies:
            config = self.group_configs[group_id]
            self._proxies[group_id] = GroupProxy(
                owner=self,
                group_id=group_id,
                replicas=config.replicas,
                f=config.f,
                registry=self.registry,
                retransmit_timeout=self.retransmit_timeout,
            )
        return self._proxies[group_id]

    def update_group(self, group_id: str, replicas: Tuple[str, ...],
                     f: int) -> None:
        """Adopt a reconfigured group's membership.

        Out-of-band delivery is safe for clients: vote counting is local
        (not replicated state), and replies from replicas outside the
        currently-known membership are simply ignored until the update
        lands.  Any live proxy into the group re-sprays its un-acked
        requests at the new membership.
        """
        config = self.group_configs.get(group_id)
        if config is None:
            return
        self.group_configs[group_id] = dataclass_replace(
            config, replicas=tuple(replicas), f=f)
        proxy = self._proxies.get(group_id)
        if proxy is not None:
            proxy.update_replicas(tuple(replicas), f)

    def on_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, Reply):
            for proxy in self._proxies.values():
                if proxy.handle_reply(src, payload):
                    return
        elif isinstance(payload, MulticastReply):
            self._handle_multicast_reply(src, payload)

    def _handle_multicast_reply(self, src: str, reply: MulticastReply) -> None:
        if reply.sender != self.name or reply.replica != src:
            return
        entry = self._inflight.get((reply.sender, reply.seq))
        if entry is None:
            return
        config = self.group_configs.get(reply.group)
        if config is None or src not in config.replicas:
            return
        if reply.group not in entry.needed or reply.group in entry.confirmed:
            return
        key = digest(("mreply", reply.result))
        votes = entry.votes.setdefault(reply.group, {}).setdefault(key, set())
        votes.add(src)
        entry.candidates.setdefault(reply.group, {})[key] = reply.result
        if len(votes) >= config.f + 1:
            entry.confirmed.add(reply.group)
            entry.group_results[reply.group] = entry.candidates[reply.group][key]
            if entry.confirmed == entry.needed:
                self._complete((reply.sender, reply.seq), entry)

    def _complete(self, key: Tuple[str, int], entry: _InFlight) -> None:
        del self._inflight[key]
        latency = self.loop.now - entry.sent_at
        self.completions.append((entry.message, latency))
        #: confirmed per-group application results, by message id
        self.results[(entry.message.mid.sender, entry.message.mid.seq)] = dict(
            entry.group_results
        )
        self.monitor.record(self.name, "client.delivered", seq=key[1])
        if entry.callback is not None:
            entry.callback(entry.message, latency)
        if self.on_complete is not None:
            self.on_complete(entry.message, latency)
