"""Build a complete ByzCast system on an execution backend.

A deployment owns a :class:`~repro.env.api.Runtime` (clock + transport +
per-node executors), the key registry, one broadcast group per overlay-tree
node (each running :class:`ByzCastApplication`), and any number of
:class:`~repro.core.client.MulticastClient` endpoints.  By default it runs
on the deterministic simulation backend; pass ``runtime=`` to run the same
protocol stack in real time (see :mod:`repro.env.rtbackend`).

Example:
    >>> from repro.core import OverlayTree, ByzCastDeployment
    >>> from repro.types import destination
    >>> tree = OverlayTree.two_level(["g1", "g2"])
    >>> dep = ByzCastDeployment(tree)
    >>> client = dep.add_client("c1")
    >>> _ = client.amulticast(destination("g1", "g2"), payload=("tx", 1))
    >>> dep.run(until=5.0)
    >>> [len(app.deliveries) for app in dep.apps("g1")]
    [1, 1, 1, 1]
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as dataclass_replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Type

from repro.bcast.config import BroadcastConfig, CostModel
from repro.bcast.group import BroadcastGroup
from repro.bcast.replica import Replica
from repro.core.client import MulticastClient
from repro.core.node import ByzCastApplication, DeliverCallback
from repro.core.tree import OverlayTree
from repro.crypto.keys import KeyRegistry
from repro.env import NetworkConfig, Runtime
from repro.env.simbackend import SimRuntime

#: maps (group_id, replica_index) -> network site, for WAN placement
SiteAssigner = Callable[[str, int], str]


@dataclass(frozen=True)
class GroupSpec:
    """Per-group configuration overrides."""

    f: int = 1
    max_batch: int = 400
    batch_delay: float = 0.0
    adaptive_batching: bool = False
    min_batch: int = 4
    request_timeout: float = 2.0
    checkpoint_interval: int = 0
    max_in_flight: int = 4
    authenticate_batches: bool = False
    costs: Optional[CostModel] = None


def _default_sites(group_id: str, replica_index: int) -> str:
    return "site0"


class ByzCastDeployment:
    """A runnable ByzCast system: tree, groups, network, clients."""

    def __init__(
        self,
        tree: OverlayTree,
        f: int = 1,
        costs: Optional[CostModel] = None,
        network_config: Optional[NetworkConfig] = None,
        seed: int = 1,
        specs: Optional[Dict[str, GroupSpec]] = None,
        sites: Optional[SiteAssigner] = None,
        replica_classes: Optional[Dict[str, Dict[str, Type[Replica]]]] = None,
        app_overrides: Optional[Dict[str, Dict[str, Callable]]] = None,
        trace_capacity: int = 0,
        max_batch: int = 400,
        batch_delay: float = 0.0,
        adaptive_batching: bool = False,
        min_batch: int = 4,
        request_timeout: float = 2.0,
        checkpoint_interval: int = 0,
        max_in_flight: int = 4,
        authenticate_batches: bool = False,
        runtime: Optional[Runtime] = None,
    ) -> None:
        self.tree = tree
        if runtime is None:
            runtime = SimRuntime(
                network_config=network_config,
                seed=seed,
                trace_capacity=trace_capacity,
            )
        self.runtime = runtime
        self.loop = runtime.clock
        self.monitor = runtime.monitor
        self.rng = runtime.rng
        self.network = runtime.transport
        self.registry = KeyRegistry()
        self._sites = sites if sites is not None else _default_sites
        default_costs = costs if costs is not None else CostModel()

        specs = specs or {}
        self.group_configs: Dict[str, BroadcastConfig] = {}
        for group_id in sorted(tree.nodes):
            spec = specs.get(group_id, GroupSpec(
                f=f, max_batch=max_batch, batch_delay=batch_delay,
                adaptive_batching=adaptive_batching, min_batch=min_batch,
                request_timeout=request_timeout,
                checkpoint_interval=checkpoint_interval,
                max_in_flight=max_in_flight,
                authenticate_batches=authenticate_batches,
            ))
            n = 3 * spec.f + 1
            self.group_configs[group_id] = BroadcastConfig(
                group_id=group_id,
                replicas=tuple(f"{group_id}/r{i}" for i in range(n)),
                f=spec.f,
                max_batch=spec.max_batch,
                batch_delay=spec.batch_delay,
                adaptive_batching=spec.adaptive_batching,
                min_batch=spec.min_batch,
                request_timeout=spec.request_timeout,
                checkpoint_interval=spec.checkpoint_interval,
                max_in_flight=spec.max_in_flight,
                authenticate_batches=spec.authenticate_batches,
                costs=spec.costs if spec.costs is not None else default_costs,
            )

        self.groups: Dict[str, BroadcastGroup] = {}
        overrides = replica_classes or {}
        self._app_overrides = app_overrides or {}
        for group_id, config in self.group_configs.items():
            group_sites = [
                self._sites(group_id, index) for index in range(config.n)
            ]
            self.groups[group_id] = BroadcastGroup.build(
                loop=self.runtime,
                network=self.network,
                config=config,
                registry=self.registry,
                app_factory=lambda name, gid=group_id: self._make_app(gid, name),
                monitor=self.monitor,
                sites=group_sites,
                replica_classes=overrides.get(group_id),
            )

        self.clients: List[MulticastClient] = []
        #: membership as constructed (epoch 0).  Standbys spawned after
        #: churn must build their protocol state from THIS and replay the
        #: ordered history (Reconfigs, MembershipUpdates) to converge —
        #: seeding them with the membership at spawn time would make their
        #: replay of early parent-relayed copies diverge from what the
        #: incumbents executed (the relayer would not be a known parent).
        self.initial_group_configs: Dict[str, BroadcastConfig] = dict(
            self.group_configs)
        self._started = False

    def _make_app(self, group_id: str, replica_name: str,
                  group_configs: Optional[Mapping[str, BroadcastConfig]] = None,
                  ) -> ByzCastApplication:
        configs = group_configs if group_configs is not None else self.group_configs
        factory = self._app_overrides.get(group_id, {}).get(replica_name)
        if factory is not None:
            return factory(
                group_id=group_id,
                tree=self.tree,
                group_configs=configs,
                registry=self.registry,
            )
        return ByzCastApplication(
            group_id=group_id,
            tree=self.tree,
            group_configs=configs,
            registry=self.registry,
        )

    # ------------------------------------------------------------------- api

    def add_client(
        self,
        name: str,
        site: str = "site0",
        on_complete: Optional[Callable] = None,
        retransmit_timeout: Optional[float] = 4.0,
        read_timeout: float = 1.0,
    ) -> MulticastClient:
        """Create and register a multicast client endpoint."""
        client = MulticastClient(
            name=name,
            loop=self.runtime,
            tree=self.tree,
            group_configs=self.group_configs,
            registry=self.registry,
            monitor=self.monitor,
            on_complete=on_complete,
            retransmit_timeout=retransmit_timeout,
            read_timeout=read_timeout,
        )
        self.network.register(client, site=site)
        self.clients.append(client)
        return client

    def start(self) -> None:
        if not self._started:
            for group in self.groups.values():
                group.start()
            self._started = True

    def run(self, until: float = 10.0, max_events: Optional[int] = None) -> None:
        """Start (if needed) and advance the runtime to ``until`` seconds."""
        self.start()
        self.runtime.run(until=until, max_events=max_events)

    def update_group_membership(self, group_id: str,
                                replicas: Sequence[str], f: int) -> BroadcastConfig:
        """Adopt a confirmed reconfiguration in deployment bookkeeping.

        Refreshes the canonical ``group_configs`` entry, the group handle,
        and every client's proxy/vote arithmetic.  Replica-side relay wiring
        is NOT touched here — that propagates through ordered
        ``MembershipUpdate`` commands (see :mod:`repro.faults.elasticity`).
        """
        config = dataclass_replace(self.group_configs[group_id],
                                   replicas=tuple(replicas), f=f)
        self.group_configs[group_id] = config
        self.groups[group_id].update_config(config)
        for client in self.clients:
            client.update_group(group_id, config.replicas, config.f)
        return config

    # -------------------------------------------------------------- accessors

    def group(self, group_id: str) -> BroadcastGroup:
        return self.groups[group_id]

    def apps(self, group_id: str) -> List[ByzCastApplication]:
        """The ByzCast application instances of a group's replicas."""
        return [replica.app for replica in self.groups[group_id].replicas]

    def delivered_sequences(self, group_id: str) -> List[List]:
        """Per-replica a-delivered message lists for ``group_id``."""
        return [app.delivered_messages() for app in self.apps(group_id)]
