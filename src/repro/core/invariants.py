"""Checkers for the atomic multicast properties of §II-B.

These functions inspect the a-delivery records collected during a run and
return human-readable violation descriptions (empty list = property holds).
They are used by the test suite (including the property-based suite and the
fault-injection suite) and are part of the public API so downstream users
can validate their own deployments and extensions.

The run should be quiescent (all submitted multicasts completed) before
checking Validity; safety properties (Agreement relative order, Integrity,
Prefix/Acyclic order) are checkable at any cut.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple

from repro.types import MulticastMessage

#: per-group delivery orders: group id → per-replica message sequences
GroupSequences = Mapping[str, Sequence[Sequence[MulticastMessage]]]


def _key(message: MulticastMessage) -> Tuple:
    return (message.mid.sender, message.mid.seq)


def check_agreement(sequences: GroupSequences) -> List[str]:
    """All correct replicas of one group deliver the same sequence."""
    violations = []
    for group, replicas in sequences.items():
        canonical = None
        for index, sequence in enumerate(replicas):
            keys = [_key(m) for m in sequence]
            if canonical is None:
                canonical = keys
            elif keys != canonical:
                violations.append(
                    f"group {group}: replica {index} delivered {keys}, "
                    f"expected {canonical}"
                )
    return violations


def check_integrity(sequences: GroupSequences,
                    sent: Iterable[MulticastMessage]) -> List[str]:
    """At-most-once delivery, only at destinations, only sent messages."""
    sent_by_key = {_key(m): m for m in sent}
    violations = []
    for group, replicas in sequences.items():
        for index, sequence in enumerate(replicas):
            seen: Set[Tuple] = set()
            for message in sequence:
                key = _key(message)
                if key in seen:
                    violations.append(
                        f"group {group}: replica {index} delivered {key} twice"
                    )
                seen.add(key)
                origin = sent_by_key.get(key)
                if origin is None:
                    violations.append(
                        f"group {group}: delivered never-multicast message {key}"
                    )
                elif group not in origin.dst:
                    violations.append(
                        f"group {group}: delivered {key} not addressed to it"
                    )
    return violations


def check_validity(sequences: GroupSequences,
                   sent: Iterable[MulticastMessage]) -> List[str]:
    """Every sent message is delivered by every destination group.

    Only meaningful once the run is quiescent.
    """
    violations = []
    for message in sent:
        for group in message.dst:
            replicas = sequences.get(group, [])
            for index, sequence in enumerate(replicas):
                if _key(message) not in {_key(m) for m in sequence}:
                    violations.append(
                        f"message {_key(message)} missing at {group} replica {index}"
                    )
    return violations


def _first_replica_orders(sequences: GroupSequences) -> Dict[str, List[Tuple]]:
    return {
        group: [_key(m) for m in replicas[0]] if replicas else []
        for group, replicas in sequences.items()
    }


def check_prefix_order(sequences: GroupSequences) -> List[str]:
    """Messages with common destinations are delivered in one relative order.

    Uses the first replica of each group (run :func:`check_agreement` first).
    Missing deliveries are the business of :func:`check_validity`; this
    checker only compares relative orders of commonly delivered pairs.
    """
    orders = _first_replica_orders(sequences)
    positions: Dict[str, Dict[Tuple, int]] = {
        group: {key: index for index, key in enumerate(order)}
        for group, order in orders.items()
    }
    violations = []
    groups = sorted(orders)
    for i, g in enumerate(groups):
        for h in groups[i + 1:]:
            common = sorted(set(positions[g]) & set(positions[h]))
            for a_index, m in enumerate(common):
                for m2 in common[a_index + 1:]:
                    g_order = positions[g][m] < positions[g][m2]
                    h_order = positions[h][m] < positions[h][m2]
                    if g_order != h_order:
                        violations.append(
                            f"groups {g}/{h} disagree on order of {m} and {m2}"
                        )
    return violations


def check_acyclic_order(sequences: GroupSequences) -> List[str]:
    """The global delivery relation ``<`` contains no cycle.

    Builds the union of every group's delivery order and searches for a
    cycle with an iterative DFS (no recursion limits on large runs).
    """
    orders = _first_replica_orders(sequences)
    edges: Dict[Tuple, Set[Tuple]] = {}
    for order in orders.values():
        for i in range(len(order)):
            edges.setdefault(order[i], set())
            for j in range(i + 1, len(order)):
                edges[order[i]].add(order[j])
                edges.setdefault(order[j], set())
    WHITE, GREY, BLACK = 0, 1, 2
    color = {node: WHITE for node in edges}
    for start in edges:
        if color[start] != WHITE:
            continue
        stack: List[Tuple[Tuple, Iterable]] = [(start, iter(edges[start]))]
        color[start] = GREY
        while stack:
            node, iterator = stack[-1]
            advanced = False
            for neighbour in iterator:
                if color[neighbour] == GREY:
                    return [f"cycle in delivery order through {neighbour}"]
                if color[neighbour] == WHITE:
                    color[neighbour] = GREY
                    stack.append((neighbour, iter(edges[neighbour])))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return []


def check_all(sequences: GroupSequences, sent: Iterable[MulticastMessage],
              quiescent: bool = True) -> List[str]:
    """Run every checker; returns the concatenated violation list."""
    sent = list(sent)
    violations = []
    violations += check_agreement(sequences)
    violations += check_integrity(sequences, sent)
    if quiescent:
        violations += check_validity(sequences, sent)
    violations += check_prefix_order(sequences)
    violations += check_acyclic_order(sequences)
    return violations
