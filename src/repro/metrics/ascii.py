"""Terminal-friendly rendering of benchmark results.

The paper communicates through throughput bars and latency CDFs; these
helpers render the same artifacts as ASCII so examples and the experiment
script can show *shapes* directly in a terminal with no plotting stack.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.metrics.cdf import cdf_points

BAR_CHAR = "█"
HALF_CHAR = "▌"


def bar_chart(rows: Sequence[Tuple[str, float]], width: int = 50,
              unit: str = "") -> str:
    """Horizontal bars scaled to the largest value.

    >>> print(bar_chart([("a", 10.0), ("b", 5.0)], width=10))  # doctest: +SKIP
    """
    if not rows:
        return "(no data)"
    label_width = max(len(label) for label, __ in rows)
    peak = max(value for __, value in rows) or 1.0
    lines = []
    for label, value in rows:
        filled = value / peak * width
        bar = BAR_CHAR * int(filled)
        if filled - int(filled) >= 0.5:
            bar += HALF_CHAR
        lines.append(f"{label:<{label_width}}  {bar:<{width + 1}} {value:,.1f}{unit}")
    return "\n".join(lines)


def cdf_plot(series: Dict[str, Sequence[float]], width: int = 60,
             height: int = 12, unit_scale: float = 1000.0,
             unit: str = "ms") -> str:
    """Plot one or more latency CDFs on a shared axis.

    Args:
        series: label → raw latency samples (seconds).
        unit_scale: multiplier for axis labels (1000 → milliseconds).
    """
    series = {label: list(samples) for label, samples in series.items()
              if samples}
    if not series:
        return "(no data)"
    lo = min(min(s) for s in series.values())
    hi = max(max(s) for s in series.values())
    if hi <= lo:
        hi = lo + 1e-9
    grid = [[" "] * width for __ in range(height)]
    markers = "*o+x#@"
    legend = []
    for index, (label, samples) in enumerate(sorted(series.items())):
        marker = markers[index % len(markers)]
        legend.append(f"  {marker} {label}")
        for value, fraction in cdf_points(samples, max_points=width * 2):
            col = int((value - lo) / (hi - lo) * (width - 1))
            row = height - 1 - int(fraction * (height - 1))
            grid[row][col] = marker
    lines = []
    for row_index, row in enumerate(grid):
        fraction = 1.0 - row_index / (height - 1)
        lines.append(f"{fraction:4.0%} |" + "".join(row))
    lines.append("     +" + "-" * width)
    left = f"{lo * unit_scale:.1f}{unit}"
    right = f"{hi * unit_scale:.1f}{unit}"
    lines.append("      " + left + " " * max(1, width - len(left) - len(right)) + right)
    lines.extend(legend)
    return "\n".join(lines)
