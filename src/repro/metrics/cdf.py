"""Cumulative distribution functions over latency samples."""

from __future__ import annotations

from typing import List, Sequence, Tuple


def cdf_points(samples: Sequence[float], max_points: int = 200) -> List[Tuple[float, float]]:
    """(value, cumulative fraction) pairs for plotting a CDF.

    Down-samples evenly to at most ``max_points`` points (always keeping the
    first and last), which is what the paper's CDF figures plot.
    """
    if not samples:
        return []
    ordered = sorted(samples)
    n = len(ordered)
    points = [(value, (index + 1) / n) for index, value in enumerate(ordered)]
    if n <= max_points:
        return points
    step = n / max_points
    selected = [points[min(n - 1, int(i * step))] for i in range(max_points)]
    if selected[-1] != points[-1]:
        selected.append(points[-1])
    return selected


def cdf_value_at(samples: Sequence[float], fraction: float) -> float:
    """The latency at which the CDF reaches ``fraction`` (0 < fraction <= 1)."""
    if not samples:
        return 0.0
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    ordered = sorted(samples)
    index = max(0, int(round(fraction * len(ordered))) - 1)
    return ordered[index]
