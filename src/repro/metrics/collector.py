"""Time-windowed measurement of completions.

Experiments run with a *warmup* interval (the system fills its pipelines,
leaders stabilize) followed by a *measurement window*; only completions
inside the window count.  This mirrors standard benchmarking methodology
(and the paper's steady-state throughput numbers).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.metrics.stats import LatencySummary, summarize


class LatencyCollector:
    """Collects (completion_time, latency) pairs and filters by window."""

    def __init__(self, window_start: float = 0.0,
                 window_end: Optional[float] = None) -> None:
        self.window_start = window_start
        self.window_end = window_end
        self._samples: List[tuple] = []

    def record(self, completion_time: float, latency: float) -> None:
        self._samples.append((completion_time, latency))

    def in_window(self) -> List[float]:
        """Latencies whose completion fell inside the measurement window."""
        end = self.window_end if self.window_end is not None else float("inf")
        return [lat for t, lat in self._samples if self.window_start <= t <= end]

    def all_samples(self) -> List[float]:
        return [lat for __, lat in self._samples]

    def summary(self) -> LatencySummary:
        return summarize(self.in_window())

    def count(self) -> int:
        return len(self.in_window())


class ThroughputMeter:
    """Completions per second over the measurement window."""

    def __init__(self, window_start: float, window_end: float) -> None:
        if window_end <= window_start:
            raise ValueError("window must have positive duration")
        self.window_start = window_start
        self.window_end = window_end
        self.completions = 0

    def record(self, completion_time: float) -> None:
        if self.window_start <= completion_time <= self.window_end:
            self.completions += 1

    @property
    def duration(self) -> float:
        return self.window_end - self.window_start

    def throughput(self) -> float:
        """Messages per second inside the window."""
        return self.completions / self.duration
