"""Plain statistics helpers (no numpy dependency at the core layer).

The paper reports mean latency with 95% confidence intervals (whiskers),
median + 95th percentile bars, and latency CDFs; these helpers compute
exactly those quantities.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple


def mean(samples: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    if not samples:
        return 0.0
    return sum(samples) / len(samples)


def _interpolate(ordered: Sequence[float], p: float) -> float:
    """The ``p``-th percentile of an already-sorted sample list."""
    if not 0 <= p <= 100:
        raise ValueError("percentile must be within [0, 100]")
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    # This form is exact when both neighbours are equal (no float drift).
    return ordered[low] + (ordered[high] - ordered[low]) * frac


def percentile(samples: Sequence[float], p: float) -> float:
    """The ``p``-th percentile (0-100) by linear interpolation; 0.0 if empty."""
    if not samples:
        if not 0 <= p <= 100:
            raise ValueError("percentile must be within [0, 100]")
        return 0.0
    return _interpolate(sorted(samples), p)


def quantiles(samples: Sequence[float], ps: Sequence[float]) -> Tuple[float, ...]:
    """Several percentiles from a single sort.

    Equivalent to ``tuple(percentile(samples, p) for p in ps)`` but sorts
    the samples once — the summaries over large benchmark windows ask for
    median/p95/p99 together, and three sorts of the same list are pure
    waste.
    """
    if not samples:
        for p in ps:
            if not 0 <= p <= 100:
                raise ValueError("percentile must be within [0, 100]")
        return tuple(0.0 for _ in ps)
    ordered = sorted(samples)
    return tuple(_interpolate(ordered, p) for p in ps)


def stddev(samples: Sequence[float]) -> float:
    """Sample standard deviation (n-1); 0.0 for fewer than two samples."""
    if len(samples) < 2:
        return 0.0
    m = mean(samples)
    return math.sqrt(sum((x - m) ** 2 for x in samples) / (len(samples) - 1))


def confidence_interval_95(samples: Sequence[float]) -> float:
    """Half-width of the 95% confidence interval of the mean (normal approx)."""
    if len(samples) < 2:
        return 0.0
    return 1.96 * stddev(samples) / math.sqrt(len(samples))


@dataclass(frozen=True)
class LatencySummary:
    """The latency statistics the paper plots."""

    count: int
    mean: float
    median: float
    p95: float
    p99: float
    ci95: float

    def scaled(self, factor: float) -> "LatencySummary":
        """Unit conversion helper (e.g. seconds → milliseconds)."""
        return LatencySummary(
            count=self.count,
            mean=self.mean * factor,
            median=self.median * factor,
            p95=self.p95 * factor,
            p99=self.p99 * factor,
            ci95=self.ci95 * factor,
        )


def summarize(samples: Sequence[float]) -> LatencySummary:
    """Compute the full latency summary for a sample set."""
    median, p95, p99 = quantiles(samples, (50, 95, 99))
    return LatencySummary(
        count=len(samples),
        mean=mean(samples),
        median=median,
        p95=p95,
        p99=p99,
        ci95=confidence_interval_95(samples),
    )
