"""Measurement utilities: latency statistics, CDFs, throughput windows."""

from repro.metrics.stats import (
    confidence_interval_95,
    mean,
    percentile,
    quantiles,
    summarize,
    LatencySummary,
)
from repro.metrics.cdf import cdf_points, cdf_value_at
from repro.metrics.collector import LatencyCollector, ThroughputMeter

__all__ = [
    "mean",
    "percentile",
    "quantiles",
    "confidence_interval_95",
    "summarize",
    "LatencySummary",
    "cdf_points",
    "cdf_value_at",
    "LatencyCollector",
    "ThroughputMeter",
]
