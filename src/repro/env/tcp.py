"""Optional TCP transport for the real-time backend.

A :class:`TcpTransport` plays the role of one *host*: it owns a set of
local endpoints, one listening socket, and lazily-opened outgoing
connections to peer hosts.  Frames are length-prefixed ``(src, dst,
payload)`` routing tuples in either wire codec — tagged JSON
(:mod:`repro.env.codec`, the default) or the struct-packed binary format
(:mod:`repro.env.wire`), selected per host with ``wire="binary"`` (every
host of a deployment must agree).  Several hosts share a plain *directory*
dict mapping endpoint names to ``(host, port)`` addresses — in tests the
directory is a shared in-memory dict, in a real deployment it would be
distributed configuration.  A second shared dict, the *site directory*,
maps endpoint names to site labels so site-level partitions apply across
hosts.

Messages to local endpoints short-circuit through the ready queue;
messages to remote endpoints go through one ordered outbound queue per
peer host, so per-link FIFO holds across the socket as well.  Partition
semantics match the in-process transport: pair- and site-blocked traffic
is dropped at the sender and counted as ``net.partitioned``.

Robustness: outbound pumps survive connection loss — they reconnect with
capped exponential backoff plus jitter (``net.reconnect`` counted) and
re-send the frame that failed mid-write.  A pump that exhausts
``CONNECT_RETRIES`` gives up (``net.connect_failed``), discarding queued
frames as ``net.blackholed``; the next send to that address respawns the
pump with a fresh backoff cycle instead of enqueueing into a dead link
forever.  Inbound connections parse frames from a single compacted
``bytearray`` (no per-frame re-slicing); an undecodable frame body is
counted as ``net.bad_frame`` and skipped (framing stays in sync), while a
corrupt length prefix — unresyncable — drops the connection.  Outbound
writes are zero-copy: the memoised payload body is handed to
``writelines`` between the route-prefix buffers without concatenation.
:meth:`TcpTransport.shutdown` drains pending outbound queues (bounded)
before cancelling the pumps.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import NetworkError
from repro.env.codec import get_codec
from repro.env.monitor import Monitor
from repro.sim.network import NetworkConfig
from repro.sim.rng import SeededRng

#: how often an outbound connection (re)tries before giving up
CONNECT_RETRIES = 40
CONNECT_BACKOFF = 0.05
#: reconnect backoff is capped here (seconds, before jitter)
MAX_BACKOFF = 1.0
#: how long shutdown() waits for outbound queues to flush
DRAIN_TIMEOUT = 0.5
#: frames coalesced into one writelines() call per flush
WRITE_BATCH = 64


class TcpTransport:
    """One host's endpoints behind a TCP listener (length-prefixed frames)."""

    def __init__(
        self,
        aloop: asyncio.AbstractEventLoop,
        clock: Any = None,
        config: Optional[NetworkConfig] = None,
        rng: Optional[SeededRng] = None,
        monitor: Optional[Monitor] = None,
        directory: Optional[Dict[str, Tuple[str, int]]] = None,
        site_directory: Optional[Dict[str, str]] = None,
        host: str = "127.0.0.1",
        wire: str = "json",
    ) -> None:
        self._aloop = aloop
        self.config = config if config is not None else NetworkConfig()
        self.monitor = monitor if monitor is not None else Monitor()
        self._rng = (rng if rng is not None else SeededRng(0)).stream("network")
        self.directory = directory if directory is not None else {}
        #: endpoint name -> site label, shared across hosts like the address
        #: directory so site partitions can resolve *remote* endpoints
        self.site_directory = (site_directory if site_directory is not None
                               else {})
        self.host = host
        self.wire = wire
        self._codec = get_codec(wire)
        self.port: Optional[int] = None
        self._endpoints: Dict[str, Tuple[Any, str]] = {}
        self._blocked_pairs: Set[Tuple[str, str]] = set()
        self._blocked_sites: Set[Tuple[str, str]] = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._out_queues: Dict[Tuple[str, int], asyncio.Queue] = {}
        self._out_tasks: Dict[Tuple[str, int], asyncio.Task] = {}

    # -- lifecycle ---------------------------------------------------------

    async def start(self, port: int = 0) -> int:
        """Bind the listening socket; publishes local endpoints and returns
        the bound port.  Must run on the runtime's asyncio loop."""
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        for name in self._endpoints:
            self.directory[name] = (self.host, self.port)
        return self.port

    def shutdown(self) -> None:
        """Drain outbound queues (bounded), cancel pumps, close the listener."""
        if (not self._aloop.is_closed() and not self._aloop.is_running()
                and self._out_queues):
            try:
                self._aloop.run_until_complete(
                    asyncio.wait_for(self.drain(), DRAIN_TIMEOUT))
            except (asyncio.TimeoutError, RuntimeError):
                pass  # best effort: undelivered frames are dropped below
        for task in self._out_tasks.values():
            task.cancel()
        self._out_tasks.clear()
        self._out_queues.clear()
        if self._server is not None:
            self._server.close()
            self._server = None

    #: alias so runtimes treating transports uniformly can call close()
    close = shutdown

    async def drain(self) -> None:
        """Wait until every outbound queue has been flushed to its socket."""
        while any(not q.empty() for q in self._out_queues.values()):
            await asyncio.sleep(0.01)

    # -- registration ------------------------------------------------------

    def register(self, actor: Any, site: str = "site0") -> None:
        if actor.name in self._endpoints:
            raise NetworkError(f"endpoint {actor.name!r} already registered")
        self._endpoints[actor.name] = (actor, site)
        self.site_directory[actor.name] = site
        actor.network = self
        if self.port is not None:
            self.directory[actor.name] = (self.host, self.port)

    def site_of(self, name: str) -> str:
        entry = self._endpoints.get(name)
        if entry is not None:
            return entry[1]
        return self.site_directory.get(name, "site0")

    def endpoints(self) -> Tuple[str, ...]:
        return tuple(self._endpoints)

    # -- partitions --------------------------------------------------------

    def partition(self, a: str, b: str, *, sites: bool = False) -> None:
        target = self._blocked_sites if sites else self._blocked_pairs
        target.add((a, b))
        target.add((b, a))

    def heal(self, a: str, b: str, *, sites: bool = False) -> None:
        target = self._blocked_sites if sites else self._blocked_pairs
        target.discard((a, b))
        target.discard((b, a))

    def heal_all(self) -> None:
        self._blocked_pairs.clear()
        self._blocked_sites.clear()

    # -- sending -----------------------------------------------------------

    def send(self, src: str, dst: str, payload: Any, size: int = 64) -> None:
        if src not in self._endpoints:
            raise NetworkError(f"unknown source endpoint {src!r}")
        local = dst in self._endpoints
        if not local and dst not in self.directory:
            raise NetworkError(f"unknown destination endpoint {dst!r}")
        self.monitor.count("net.sent")
        if (src, dst) in self._blocked_pairs:
            self.monitor.count("net.partitioned")
            return
        if self._blocked_sites and (
                (self.site_of(src), self.site_of(dst)) in self._blocked_sites):
            self.monitor.count("net.partitioned")
            return
        if self.config.drop_rate > 0 and self._rng.random() < self.config.drop_rate:
            self.monitor.count("net.dropped")
            return
        if local:
            actor = self._endpoints[dst][0]
            self._aloop.call_soon(actor.receive, src, payload)
            return
        address = self.directory[dst]
        # frame_route_parts encodes the payload once (identity-memoised) and
        # only splices the per-recipient route buffers — a broadcast neither
        # re-walks the payload object graph nor copies its bytes per peer.
        self._outbound(address).put_nowait(
            self._codec.frame_route_parts(src, dst, payload))

    # -- plumbing ----------------------------------------------------------

    def _outbound(self, address: Tuple[str, int]) -> asyncio.Queue:
        queue = self._out_queues.get(address)
        if queue is None:
            queue = asyncio.Queue()
            self._out_queues[address] = queue
        task = self._out_tasks.get(address)
        if task is None or task.done():
            # First send to this address — or its pump gave up on an
            # unreachable peer and died.  Respawn with a fresh backoff
            # cycle; without this, every later frame to the address would
            # sit in a queue nobody drains.
            self._out_tasks[address] = self._aloop.create_task(
                self._pump(address, queue)
            )
        return queue

    async def _connect(self, address: Tuple[str, int]):
        """Open a connection with capped exponential backoff plus jitter."""
        for attempt in range(CONNECT_RETRIES):
            try:
                _, writer = await asyncio.open_connection(*address)
                return writer
            except OSError:
                backoff = min(CONNECT_BACKOFF * (2 ** attempt), MAX_BACKOFF)
                await asyncio.sleep(backoff * (0.5 + self._rng.random()))
        self.monitor.count("net.connect_failed")
        return None

    async def _pump(self, address: Tuple[str, int], queue: asyncio.Queue) -> None:
        """One ordered writer per peer host (per-link FIFO over the socket).

        Survives connection loss: the frame that failed mid-write is kept
        and re-sent over a fresh connection, so per-link FIFO holds across
        reconnects too.  Queue entries are tuples of buffers
        (``frame_route_parts``); up to ``WRITE_BATCH`` frames are coalesced
        into a single ``writelines`` call per flush.
        """
        writer = None
        pending: List[Tuple[bytes, ...]] = []
        try:
            while True:
                if writer is None:
                    writer = await self._connect(address)
                    if writer is None:
                        # Peer stayed unreachable; give up on this link and
                        # account for every frame it swallows.  The next
                        # send respawns the pump (see _outbound).
                        lost = len(pending)
                        while not queue.empty():
                            queue.get_nowait()
                            lost += 1
                        if lost:
                            self.monitor.count("net.blackholed", lost)
                        return
                if not pending:
                    pending.append(await queue.get())
                    while (len(pending) < WRITE_BATCH
                           and not queue.empty()):
                        pending.append(queue.get_nowait())
                try:
                    # Entries are part-tuples from frame_route_parts, but a
                    # single pre-joined frame (bytes) is accepted too.
                    writer.writelines(
                        [part for parts in pending
                         for part in (parts if isinstance(parts, tuple)
                                      else (parts,))])
                    await writer.drain()
                    pending.clear()
                except ConnectionError:
                    self.monitor.count("net.reconnect")
                    writer.close()
                    writer = None
        except asyncio.CancelledError:
            pass
        finally:
            if writer is not None:
                writer.close()

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        buffer = bytearray()

        def bad_frame(exc: NetworkError) -> None:
            # Undecodable body inside intact framing: count, skip, resync
            # at the next length prefix — one poisoned frame cannot take
            # down the link or the frames around it.
            self.monitor.count("net.bad_frame")

        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                buffer += chunk
                messages, ok = self._codec.drain_frames(
                    buffer, on_bad=bad_frame)
                for message in messages:
                    # A frame that decodes but is not a (src, dst, payload)
                    # routing tuple must not crash the reader task.
                    if not (isinstance(message, tuple) and len(message) == 3):
                        self.monitor.count("net.bad_frame")
                        continue
                    src, dst, payload = message
                    entry = self._endpoints.get(dst)
                    if entry is None:
                        self.monitor.count("net.misrouted")
                        continue
                    entry[0].receive(src, payload)
                if not ok:
                    # Corrupt length prefix: the stream cannot be resynced,
                    # drop the connection (the peer's pump reconnects).
                    self.monitor.count("net.bad_frame")
                    break
        except ConnectionError:
            pass
        finally:
            writer.close()
