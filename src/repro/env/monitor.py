"""Counters and structured trace events for observing a run.

The :class:`Monitor` is shared by all components of one deployment — on any
execution backend.  It is a plain in-memory sink: counters for cheap
aggregate statistics, and an optional bounded trace of structured records
for debugging and tests that assert on protocol-level behaviour (e.g.
"replica r2 flagged a protocol violation by the leader").  Its clock is
bound by the owning runtime, so record timestamps are virtual seconds under
simulation and wall-clock seconds under the real-time backend.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class TraceRecord:
    """One structured trace event."""

    time: float
    component: str
    kind: str
    detail: Tuple[Tuple[str, Any], ...]

    def get(self, key: str, default: Any = None) -> Any:
        return dict(self.detail).get(key, default)


class Monitor:
    """Aggregates counters and (optionally) a bounded event trace."""

    def __init__(self, trace_capacity: int = 0) -> None:
        self.counters: Counter = Counter()
        self.trace_capacity = trace_capacity
        #: fast-path guard for :meth:`record` — hot protocol paths check it
        #: before building keyword details, so a traceless run allocates no
        #: trace entries at all
        self.enabled = bool(trace_capacity)
        #: ring buffer of the *last* ``trace_capacity`` records — late-run
        #: events stay observable in long runs; evictions are counted under
        #: the ``trace.dropped`` counter
        self.trace: Deque[TraceRecord] = deque(
            maxlen=trace_capacity if trace_capacity else None
        )
        #: current-value metrics (e.g. ``consensus.in_flight.<replica>``)
        #: with a ``<name>.peak`` high-water companion; kept apart from
        #: ``counters`` so gauge churn never perturbs counter fingerprints
        self.gauges: Dict[str, float] = {}
        #: interned ``<name>.peak`` keys — :meth:`gauge` is on the consensus
        #: hot path (pipeline depth transitions), so the concat happens once
        #: per gauge name, not once per call
        self._peak_keys: Dict[str, str] = {}
        self._clock = None  # set by the deployment; callable () -> float

    def bind_clock(self, clock) -> None:
        """Attach a ``() -> float`` returning current virtual time."""
        self._clock = clock

    @property
    def now(self) -> float:
        return self._clock() if self._clock is not None else 0.0

    def count(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name``."""
        self.counters[name] += amount

    def record(self, component: str, kind: str, **detail: Any) -> None:
        """Append a trace record (if tracing is enabled) and bump a counter.

        The trace is a ring: once ``trace_capacity`` records accumulate,
        each append evicts the oldest record (counted as ``trace.dropped``).
        """
        self.counters[kind] += 1
        if not self.enabled:
            return
        if len(self.trace) == self.trace_capacity:
            self.counters["trace.dropped"] += 1
        self.trace.append(
            TraceRecord(self.now, component, kind, tuple(sorted(detail.items())))
        )

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` and track its ``.peak``.

        The plain value store always happens — live policies (e.g.
        :class:`repro.faults.elasticity.AutoscalePolicy`) read gauges even
        on untraced deployments.  Peak tracking is observability-only, so
        on a disabled monitor it takes the same fast exit as
        :meth:`record`: no string build, no extra dict traffic.
        """
        self.gauges[name] = value
        if not self.enabled:
            return
        peak = self._peak_keys.get(name)
        if peak is None:
            peak = self._peak_keys[name] = name + ".peak"
        if value > self.gauges.get(peak, float("-inf")):
            self.gauges[peak] = value

    def records(self, kind: Optional[str] = None) -> List[TraceRecord]:
        """Trace records, optionally filtered by kind."""
        if kind is None:
            return list(self.trace)
        return [r for r in self.trace if r.kind == kind]

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy of all counters."""
        return dict(self.counters)
