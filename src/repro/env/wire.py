"""Binary wire codec: struct-packed frames for the real-time fast path.

Drop-in alternative to the JSON codec (:mod:`repro.env.codec`) with the
same API surface — ``encode`` / ``decode`` / ``frame`` / ``frame_route`` /
``frame_route_parts`` / ``read_frames`` / ``drain_frames`` — and the same
``>I`` length-prefixed framing, but a tag-byte body format instead of
tagged JSON (full layout: docs/WIRE.md):

====  =========================================================
tag   payload
====  =========================================================
0x00  ``None``
0x01  ``False``
0x02  ``True``
0x03  int, 8-byte signed big-endian (``>q``)
0x04  int outside ``>q`` range: u32 length + signed two's complement
0x05  float, IEEE-754 double (``>d``)
0x06  str: u32 byte length + UTF-8
0x07  bytes: u32 length
0x08  tuple: u32 count + items
0x09  list: u32 count + items
0x0A  frozenset: u32 count + items in sorted order
0x0B  dict: u32 count + alternating key, value
0x0C  registered dataclass: u16 type id + fields in declaration order
====  =========================================================

Dataclasses carry no field names on the wire: the u16 type id indexes the
registration-order table shared with the JSON codec
(:func:`repro.env.codec.register_wire_type`), and fields are positional —
which is why application types must register in the same order on every
host.  Sets are serialized sorted, so encoding is canonical: equal objects
produce identical bytes under either codec.

Encodings of dataclass messages are memoised by object identity in
:data:`repro.crypto.cache.wire_encode_cache` (a separate cache from the
JSON codec's, since both key on ``id(obj)``), so a broadcast to ``n - 1``
peers walks the object graph once.

:func:`decode` is strict: unknown tags, unknown type ids, truncated
payloads and trailing bytes all raise :class:`~repro.errors.NetworkError`
— the transport counts ``net.bad_frame`` and isolates the connection
rather than crashing the reader.
"""

from __future__ import annotations

import dataclasses
import struct
from typing import Any, Callable, Tuple

from repro.crypto import cache as _cache
from repro.env import codec as _codec
from repro.env.codec import MAX_FRAME, _LENGTH  # shared framing
from repro.errors import NetworkError

_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")

_NONE = b"\x00"
_FALSE = b"\x01"
_TRUE = b"\x02"
_INT64 = 0x03
_INTBIG = 0x04
_FLOAT = 0x05
_STR = 0x06
_BYTES = 0x07
_TUPLE = 0x08
_LIST = 0x09
_FROZENSET = 0x0A
_DICT = 0x0B
_DATACLASS = 0x0C

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1

# Per-class metadata, lazily built on first use.  The type-id registry in
# :mod:`repro.env.codec` is append-only, so these never go stale.
#   class   -> (b"\x0c" + u16 type id, field-name tuple)   [encode path]
#   type id -> (class, field count)                        [decode path]
_DC_BY_CLS: dict = {}
_DC_BY_ID: dict = {}


def _dc_encode_meta(cls) -> Tuple[bytes, Tuple[str, ...]]:
    head = bytes((_DATACLASS,)) + _U16.pack(_codec.wire_type_id(cls))
    meta = (head, tuple(f.name for f in dataclasses.fields(cls)))
    _DC_BY_CLS[cls] = meta
    return meta


def _dc_decode_meta(type_id: int) -> Tuple[type, int]:
    cls = _codec.wire_type_by_id(type_id)
    meta = (cls, len(dataclasses.fields(cls)))
    _DC_BY_ID[type_id] = meta
    return meta


def _encode_into(out: bytearray, value: Any) -> None:
    # Dispatch on exact type first: the hot path is protocol dataclasses
    # full of str/int/bytes/tuple leaves, and `type(x) is T` beats a chain
    # of isinstance calls.  Subclass and odd cases fall through below.
    kind = type(value)
    if kind is str:
        raw = value.encode("utf-8")
        out.append(_STR)
        out += _U32.pack(len(raw))
        out += raw
    elif kind is int:
        if _I64_MIN <= value <= _I64_MAX:
            out.append(_INT64)
            out += _I64.pack(value)
        else:
            raw = value.to_bytes((value.bit_length() + 8) // 8,
                                 "big", signed=True)
            out.append(_INTBIG)
            out += _U32.pack(len(raw))
            out += raw
    elif kind is tuple:
        out.append(_TUPLE)
        out += _U32.pack(len(value))
        for item in value:
            _encode_into(out, item)
    elif kind is bytes:
        out.append(_BYTES)
        out += _U32.pack(len(value))
        out += value
    elif value is None:
        out += _NONE
    elif value is True:
        out += _TRUE
    elif value is False:
        out += _FALSE
    elif kind is float:
        out.append(_FLOAT)
        out += _F64.pack(value)
    elif kind is list:
        out.append(_LIST)
        out += _U32.pack(len(value))
        for item in value:
            _encode_into(out, item)
    elif kind is frozenset or kind is set:
        # Sorted for a canonical frame, mirroring the JSON codec.
        out.append(_FROZENSET)
        out += _U32.pack(len(value))
        for item in sorted(value):
            _encode_into(out, item)
    elif kind is dict:
        out.append(_DICT)
        out += _U32.pack(len(value))
        for key, item in value.items():
            _encode_into(out, key)
            _encode_into(out, item)
    else:
        meta = _DC_BY_CLS.get(kind)
        if meta is None:
            if isinstance(value, int):      # bool/int subclasses
                _encode_into(out, int(value))
                return
            if isinstance(value, float):
                _encode_into(out, float(value))
                return
            if isinstance(value, str):
                _encode_into(out, str(value))
                return
            if not (dataclasses.is_dataclass(value)
                    and not isinstance(value, type)):
                raise NetworkError(
                    f"cannot encode value of type {kind.__name__!r}")
            meta = _dc_encode_meta(kind)
        head, names = meta
        out += head
        for name in names:
            _encode_into(out, getattr(value, name))


def encode(obj: Any) -> bytes:
    """Serialize ``obj`` to a binary frame body (no length prefix).

    Dataclass encodings are memoised by object identity, same contract as
    the JSON codec's :func:`repro.env.codec.encode`.
    """
    _codec.ensure_registered()
    cacheable = (
        _cache.enabled()
        and dataclasses.is_dataclass(obj)
        and not isinstance(obj, type)
    )
    if cacheable:
        cached = _cache.wire_encode_cache.get(obj)
        if cached is not None:
            return cached
    out = bytearray()
    _encode_into(out, obj)
    body = bytes(out)
    if cacheable:
        _cache.wire_encode_cache.put(obj, body)
    return body


def _decode_from(data: bytes, offset: int, limit: int,
                 _unpack_i64=_I64.unpack_from,
                 _unpack_u32=_U32.unpack_from,
                 _unpack_u16=_U16.unpack_from,
                 _unpack_f64=_F64.unpack_from) -> Tuple[Any, int]:
    # Bounds are enforced lazily: ``data[offset]`` past the end raises
    # IndexError and ``unpack_from`` raises struct.error, both translated
    # to NetworkError by :func:`decode`.  Only slice reads (str/bytes/
    # bigint payloads) need an explicit check, because Python slicing
    # silently truncates instead of raising.  The tag dispatch is ordered
    # by frequency in protocol traffic: str > int > tuple > dataclass.
    tag = data[offset]
    offset += 1
    if tag == _STR:
        (length,) = _unpack_u32(data, offset)
        offset += 4
        end = offset + length
        if end > limit:
            raise NetworkError(
                f"truncated binary frame: need {length} byte(s) "
                f"at offset {offset}")
        return data[offset:end].decode("utf-8"), end
    if tag == _INT64:
        return _unpack_i64(data, offset)[0], offset + 8
    if tag == _TUPLE or tag == _DATACLASS:
        # The two container tags that dominate protocol frames share one
        # loop with the leaf tags (str/int/bytes) decoded inline — the
        # recursive call per leaf would otherwise be the single largest
        # cost in the decoder.
        if tag == _TUPLE:
            (count,) = _unpack_u32(data, offset)
            offset += 4
            cls = None
        else:
            (type_id,) = _unpack_u16(data, offset)
            offset += 2
            meta = _DC_BY_ID.get(type_id)
            if meta is None:
                meta = _dc_decode_meta(type_id)
            cls, count = meta
        items = []
        append = items.append
        for _ in range(count):
            leaf = data[offset]
            if leaf == _STR:
                (length,) = _unpack_u32(data, offset + 1)
                offset += 5
                end = offset + length
                if end > limit:
                    raise NetworkError(
                        f"truncated binary frame: need {length} byte(s) "
                        f"at offset {offset}")
                append(data[offset:end].decode("utf-8"))
                offset = end
            elif leaf == _INT64:
                append(_unpack_i64(data, offset + 1)[0])
                offset += 9
            elif leaf == _BYTES:
                (length,) = _unpack_u32(data, offset + 1)
                offset += 5
                end = offset + length
                if end > limit:
                    raise NetworkError(
                        f"truncated binary frame: need {length} byte(s) "
                        f"at offset {offset}")
                append(data[offset:end])
                offset = end
            else:
                item, offset = _decode_from(data, offset, limit)
                append(item)
        if cls is None:
            return tuple(items), offset
        try:
            return cls(*items), offset
        except (TypeError, ValueError) as exc:
            raise NetworkError(
                f"cannot rebuild {cls.__name__} from frame: {exc}") from exc
    if tag == _BYTES:
        (length,) = _unpack_u32(data, offset)
        offset += 4
        end = offset + length
        if end > limit:
            raise NetworkError(
                f"truncated binary frame: need {length} byte(s) "
                f"at offset {offset}")
        return data[offset:end], end
    if tag == _FROZENSET:
        (count,) = _unpack_u32(data, offset)
        offset += 4
        items = []
        append = items.append
        for _ in range(count):
            item, offset = _decode_from(data, offset, limit)
            append(item)
        return frozenset(items), offset
    if tag == _DICT:
        (count,) = _unpack_u32(data, offset)
        offset += 4
        mapping = {}
        for _ in range(count):
            key, offset = _decode_from(data, offset, limit)
            value, offset = _decode_from(data, offset, limit)
            mapping[key] = value
        return mapping, offset
    if tag == 0x00:
        return None, offset
    if tag == 0x01:
        return False, offset
    if tag == 0x02:
        return True, offset
    if tag == _FLOAT:
        return _unpack_f64(data, offset)[0], offset + 8
    if tag == _LIST:
        (count,) = _unpack_u32(data, offset)
        offset += 4
        items = []
        append = items.append
        for _ in range(count):
            item, offset = _decode_from(data, offset, limit)
            append(item)
        return items, offset
    if tag == _INTBIG:
        (length,) = _unpack_u32(data, offset)
        offset += 4
        end = offset + length
        if end > limit:
            raise NetworkError(
                f"truncated binary frame: need {length} byte(s) "
                f"at offset {offset}")
        return int.from_bytes(data[offset:end], "big", signed=True), end
    raise NetworkError(f"unknown binary wire tag 0x{tag:02x}")


def decode(body) -> Any:
    """Inverse of :func:`encode`; strict about malformed input."""
    _codec.ensure_registered()
    if type(body) is not bytes:
        body = bytes(body)   # memoryview / bytearray input
    try:
        value, offset = _decode_from(body, 0, len(body))
    except IndexError:
        raise NetworkError(
            "truncated binary frame: ran out of bytes") from None
    except struct.error as exc:
        raise NetworkError(f"truncated binary frame: {exc}") from exc
    except UnicodeDecodeError as exc:
        raise NetworkError(f"invalid UTF-8 in binary frame: {exc}") from exc
    except RecursionError:
        raise NetworkError("binary frame nests too deeply") from None
    if offset != len(body):
        raise NetworkError(
            f"{len(body) - offset} trailing byte(s) after binary frame body")
    return value


def frame(obj: Any) -> bytes:
    """Encode ``obj`` as one length-prefixed binary frame ready to write."""
    body = encode(obj)
    if len(body) > MAX_FRAME:
        raise NetworkError(f"frame too large: {len(body)} bytes")
    return _LENGTH.pack(len(body)) + body


def _route_head(src: str, dst: str) -> bytes:
    head = bytearray()
    head.append(_TUPLE)
    head += _U32.pack(3)
    _encode_into(head, src)
    _encode_into(head, dst)
    return bytes(head)


def frame_route_parts(src: str, dst: str, payload: Any) -> Tuple[bytes, ...]:
    """The buffers of one framed ``(src, dst, payload)`` routing tuple.

    ``b"".join(parts)`` is byte-identical to ``frame((src, dst, payload))``;
    the payload body is the memoised :func:`encode` result spliced in by
    reference for the transport's ``writelines`` zero-copy write path.
    """
    body = encode(payload)
    head = _route_head(src, dst)
    total = len(head) + len(body)
    if total > MAX_FRAME:
        raise NetworkError(f"frame too large: {total} bytes")
    return (_LENGTH.pack(total) + head, body)


def frame_route(src: str, dst: str, payload: Any) -> bytes:
    """One framed ``(src, dst, payload)`` routing tuple, payload encoded once."""
    return b"".join(frame_route_parts(src, dst, payload))


def read_frames(buffer: bytes) -> Tuple[list, bytes]:
    """Split ``buffer`` into complete decoded frames + unconsumed remainder."""
    frames, consumed, ok = _codec.split_frames(buffer, decode)
    if not ok:
        raise NetworkError(f"frame length exceeds limit at offset {consumed}")
    return frames, bytes(buffer[consumed:])


def drain_frames(buffer: bytearray,
                 decode_body: Callable[[Any], Any] = None,
                 on_bad: Callable[[NetworkError], None] = None,
                 ) -> Tuple[list, bool]:
    """Consume complete frames from ``buffer`` in place (see JSON codec)."""
    frames, consumed, ok = _codec.split_frames(
        buffer, decode_body or decode, on_bad)
    if consumed:
        del buffer[:consumed]
    return frames, ok
