"""Deterministic discrete-event backend: wraps the ``repro.sim`` kernel.

This is the default backend.  It preserves the exact construction order of
the historical deployments (monitor → clock binding → seeded RNG →
network), so a given seed produces bit-identical monitor traces before and
after the `repro.env` refactor — the golden-trace test in
``tests/env/test_golden_trace.py`` pins this.
"""

from __future__ import annotations

from typing import Optional

from repro.env.api import Clock, Executor, Runtime, Transport
from repro.env.monitor import Monitor
from repro.sim.cpu import CpuQueue
from repro.sim.events import EventLoop
from repro.sim.network import Network, NetworkConfig
from repro.sim.rng import SeededRng


class SimRuntime(Runtime):
    """Virtual time, CPU-cost accounting, simulated network.

    The :class:`~repro.sim.events.EventLoop` *is* the clock and the
    :class:`~repro.sim.network.Network` *is* the transport — both already
    satisfy the :mod:`repro.env.api` protocols; this facade only bundles
    them with per-node :class:`~repro.sim.cpu.CpuQueue` executors.
    """

    deterministic = True

    def __init__(
        self,
        network_config: Optional[NetworkConfig] = None,
        seed: int = 1,
        trace_capacity: int = 0,
        monitor: Optional[Monitor] = None,
        loop: Optional[EventLoop] = None,
        network: Optional[Network] = None,
    ) -> None:
        self.loop = loop if loop is not None else EventLoop()
        self.monitor = monitor if monitor is not None else Monitor(
            trace_capacity=trace_capacity
        )
        self.monitor.bind_clock(lambda: self.loop.now)
        self.rng = SeededRng(seed)
        if network is not None:
            self.network = network
        else:
            self.network = Network(
                self.loop,
                network_config if network_config is not None else NetworkConfig(),
                rng=self.rng,
                monitor=self.monitor,
            )

    @classmethod
    def from_clock(cls, loop: EventLoop) -> "SimRuntime":
        """Clock-only adapter for actors built around a bare event loop.

        No network/monitor/rng is created; the actor's transport attaches
        when some :class:`~repro.sim.network.Network` registers it.
        """
        runtime = cls.__new__(cls)
        runtime.loop = loop
        runtime.monitor = None
        runtime.rng = None
        runtime.network = None
        return runtime

    # -- Runtime interface -------------------------------------------------

    @property
    def clock(self) -> Clock:
        return self.loop

    @property
    def transport(self) -> Optional[Transport]:
        return self.network

    def create_executor(self) -> Executor:
        return CpuQueue(self.loop)

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        self.loop.run(until=until, max_events=max_events)

    def stop(self) -> None:
        self.loop.stop()
