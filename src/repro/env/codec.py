"""Wire codecs: protocol messages ⇄ length-prefixed frames.

The real-time TCP transport needs a serialization for the protocol's frozen
dataclasses (requests, votes, multicasts, signatures).  Two codecs share
one framing (a ``>I`` length prefix) and one registered-type table:

* **json** (this module, the strict-back-compat default) — the frame body
  is JSON with a small tagging scheme for the Python types JSON cannot
  express:

  * ``{"!b": "<base64>"}`` — ``bytes`` (digests, signature tags);
  * ``{"!t": [...]}`` — ``tuple``;
  * ``{"!fs": [...]}`` — ``frozenset`` (destination sets);
  * ``{"!m": [[k, v], ...]}`` — ``dict`` with arbitrary keys;
  * ``{"!d": "<TypeName>", "f": {...}}`` — a registered frozen dataclass.

* **binary** (:mod:`repro.env.wire`) — a struct-packed tag-byte format
  with positional dataclass fields keyed by small type ids
  (docs/WIRE.md); ~2-4x cheaper to encode/decode and several times
  smaller on the wire.

Every message type of the broadcast and multicast layers is pre-registered;
applications with custom command dataclasses call :func:`register_wire_type`
once at startup — **in the same order on every host**, because the binary
codec derives its per-type ids from registration order.  Select a codec by
name with :func:`get_codec` (``TcpTransport(wire="binary")``, or the
scenario knob ``protocol.wire``, docs/SCENARIOS.md).
"""

from __future__ import annotations

import base64
import dataclasses
import json
import struct
from typing import Any, Callable, Dict, List, Tuple, Type

from repro.crypto import cache as _cache
from repro.errors import NetworkError

_LENGTH = struct.Struct(">I")
#: refuse to decode frames above this size (corrupt length prefix guard)
MAX_FRAME = 64 * 1024 * 1024

#: codec names accepted by :func:`get_codec` (and ``protocol.wire``)
CODEC_NAMES = ("json", "binary")

_REGISTRY: Dict[str, Type] = {}
#: registration-order type ids, shared with the binary codec: the table is
#: identical on every host as long as types register in the same order
_TYPE_IDS: Dict[str, int] = {}
_TYPES_BY_ID: List[Type] = []


def register_wire_type(cls: Type) -> Type:
    """Register a frozen dataclass for wire encoding; returns ``cls``.

    Usable as a decorator on application-defined command types.  The
    binary codec identifies the class by its registration index, so
    application types must register in the same order on every host
    (module-import order suffices — registration happens at import time).
    """
    if not dataclasses.is_dataclass(cls):
        raise TypeError(f"{cls!r} is not a dataclass")
    name = cls.__name__
    existing = _REGISTRY.get(name)
    if existing is not None:
        if existing is not cls:
            raise NetworkError(f"wire type name collision: {name!r}")
        return cls
    _REGISTRY[name] = cls
    _TYPE_IDS[name] = len(_TYPES_BY_ID)
    _TYPES_BY_ID.append(cls)
    return cls


def _register_builtin_types() -> None:
    from repro.bcast import messages as bmsg
    from repro.bcast.reconfig import Reconfig, View
    from repro.core import messages as cmsg
    from repro.crypto.signatures import Signature
    from repro.types import Delivery, MessageId, MulticastMessage

    for cls in (
        bmsg.Request, bmsg.Propose, bmsg.Write, bmsg.Accept, bmsg.Reply,
        bmsg.Stop, bmsg.StopData, bmsg.Sync, bmsg.Heartbeat, bmsg.CertReport,
        bmsg.StateRequest, bmsg.StateResponse,
        cmsg.WireMulticast, cmsg.MulticastReply,
        Reconfig, View, Signature, MessageId, MulticastMessage, Delivery,
        # Admin commands ride inside Request.command over neighbour links,
        # so they need wire ids too.  Appended after the original table —
        # the binary codec's type ids are registration-order indexes.
        cmsg.MembershipUpdate, cmsg.TreeUpdate,
        bmsg.AuthenticatedPropose,
    ):
        register_wire_type(cls)


def ensure_registered() -> None:
    """Register the built-in protocol message types (idempotent)."""
    if not _REGISTRY:
        _register_builtin_types()


def registered_type(name: str) -> Type:
    """The registered dataclass called ``name`` (raises on unknown)."""
    cls = _REGISTRY.get(name)
    if cls is None:
        raise NetworkError(f"unknown wire type {name!r}")
    return cls


def wire_type_id(cls: Type) -> int:
    """The binary codec's small integer id of a registered class."""
    try:
        return _TYPE_IDS[cls.__name__]
    except KeyError:
        raise NetworkError(
            f"cannot encode unregistered dataclass {cls.__name__!r}; "
            f"call repro.env.codec.register_wire_type({cls.__name__})"
        ) from None


def wire_type_by_id(type_id: int) -> Type:
    """Inverse of :func:`wire_type_id` (raises on unknown ids)."""
    if 0 <= type_id < len(_TYPES_BY_ID):
        return _TYPES_BY_ID[type_id]
    raise NetworkError(f"unknown wire type id {type_id}")


def _to_jsonable(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, bytes):
        return {"!b": base64.b64encode(value).decode("ascii")}
    if isinstance(value, tuple):
        return {"!t": [_to_jsonable(v) for v in value]}
    if isinstance(value, (frozenset, set)):
        # Sort for a canonical frame; protocol sets hold comparable strings.
        return {"!fs": [_to_jsonable(v) for v in sorted(value)]}
    if isinstance(value, list):
        return [_to_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {"!m": [[_to_jsonable(k), _to_jsonable(v)] for k, v in value.items()]}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        name = type(value).__name__
        if _REGISTRY.get(name) is not type(value):
            raise NetworkError(
                f"cannot encode unregistered dataclass {name!r}; "
                f"call repro.env.codec.register_wire_type({name})"
            )
        fields = {
            f.name: _to_jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {"!d": name, "f": fields}
    raise NetworkError(f"cannot encode value of type {type(value).__name__!r}")


def _from_jsonable(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        return [_from_jsonable(v) for v in value]
    if isinstance(value, dict):
        if "!b" in value:
            return base64.b64decode(value["!b"])
        if "!t" in value:
            return tuple(_from_jsonable(v) for v in value["!t"])
        if "!fs" in value:
            return frozenset(_from_jsonable(v) for v in value["!fs"])
        if "!m" in value:
            return {_from_jsonable(k): _from_jsonable(v) for k, v in value["!m"]}
        if "!d" in value:
            cls = registered_type(value["!d"])
            fields = {k: _from_jsonable(v) for k, v in value["f"].items()}
            return cls(**fields)
    raise NetworkError(f"malformed wire value: {value!r}")


def encode(obj: Any) -> bytes:
    """Serialize ``obj`` to a JSON frame body (no length prefix).

    Encodings of registered dataclass messages are memoised by object
    identity: a broadcast sends the identical Propose/Write/Accept object to
    every peer, and without the cache each send re-walks the object graph.
    """
    ensure_registered()
    cacheable = (
        _cache.enabled()
        and dataclasses.is_dataclass(obj)
        and not isinstance(obj, type)
    )
    if cacheable:
        cached = _cache.encode_cache.get(obj)
        if cached is not None:
            return cached
    body = json.dumps(_to_jsonable(obj), separators=(",", ":")).encode("utf-8")
    if cacheable:
        _cache.encode_cache.put(obj, body)
    return body


def decode(body: bytes) -> Any:
    """Inverse of :func:`encode`."""
    ensure_registered()
    try:
        return _from_jsonable(json.loads(bytes(body).decode("utf-8")))
    except (ValueError, UnicodeDecodeError) as exc:
        raise NetworkError(f"undecodable JSON frame body: {exc}") from exc


def frame(obj: Any) -> bytes:
    """Encode ``obj`` as one length-prefixed frame ready to write."""
    body = encode(obj)
    if len(body) > MAX_FRAME:
        raise NetworkError(f"frame too large: {len(body)} bytes")
    return _LENGTH.pack(len(body)) + body


def frame_route_parts(src: str, dst: str, payload: Any) -> Tuple[bytes, ...]:
    """The buffers of one framed ``(src, dst, payload)`` routing tuple.

    ``b"".join(parts)`` is byte-identical to ``frame((src, dst, payload))``,
    but the payload body is the memoised :func:`encode` result spliced in
    *by reference*: a broadcast to ``n - 1`` peers pays the payload encoding
    once, and the transport can hand the buffers to ``writelines`` without
    ever concatenating them (the zero-copy write path of
    :class:`repro.env.tcp.TcpTransport`).
    """
    body = encode(payload)
    head = (b'{"!t":[' + json.dumps(src).encode("utf-8") + b","
            + json.dumps(dst).encode("utf-8") + b",")
    total = len(head) + len(body) + 2
    if total > MAX_FRAME:
        raise NetworkError(f"frame too large: {total} bytes")
    return (_LENGTH.pack(total) + head, body, b"]}")


def frame_route(src: str, dst: str, payload: Any) -> bytes:
    """One framed ``(src, dst, payload)`` routing tuple, payload encoded once.

    Byte-identical to ``frame((src, dst, payload))`` but splices the two
    route strings around the memoised payload body instead of re-walking the
    payload object graph — a broadcast to ``n - 1`` peers pays the payload
    encoding once instead of once per recipient.
    """
    return b"".join(frame_route_parts(src, dst, payload))


def split_frames(buffer, decode_body: Callable[[Any], Any],
                 on_bad: Callable[[NetworkError], None] = None,
                 ) -> Tuple[list, int, bool]:
    """Offset-based frame splitter shared by both codecs.

    Walks ``buffer`` (any bytes-like: ``bytes``, ``bytearray``,
    ``memoryview``) without re-slicing the tail per frame and returns
    ``(decoded_frames, consumed_bytes, ok)``.  ``ok`` is ``False`` when a
    length prefix exceeds :data:`MAX_FRAME` — the stream cannot be resynced
    past a corrupt prefix, so the caller must drop the connection.  A frame
    *body* that fails to decode is isolated when ``on_bad`` is given: the
    handler is called with the :class:`NetworkError`, the bad frame is
    skipped (its framing is intact, so the stream resyncs at the next
    prefix) and splitting continues.  Without ``on_bad`` the error
    propagates.
    """
    out: list = []
    view = memoryview(buffer)
    offset = 0
    size = len(view)
    ok = True
    try:
        while size - offset >= _LENGTH.size:
            (length,) = _LENGTH.unpack_from(view, offset)
            if length > MAX_FRAME:
                ok = False
                break
            end = offset + _LENGTH.size + length
            if size < end:
                break
            # Materialize the body: decoders want bytes, and a memoryview
            # slice escaping into an exception traceback would pin the
            # buffer against the caller's in-place compaction.
            body = bytes(view[offset + _LENGTH.size:end])
            try:
                out.append(decode_body(body))
            except NetworkError as exc:
                if on_bad is None:
                    raise
                on_bad(exc)
            offset = end
    finally:
        view.release()
    return out, offset, ok


def read_frames(buffer: bytes) -> Tuple[list, bytes]:
    """Split ``buffer`` into complete decoded frames + unconsumed remainder.

    Parses by offset (one tail slice at the end) instead of re-slicing the
    buffer per frame — O(n) in the buffer size.  Raises
    :class:`NetworkError` on a corrupt length prefix or frame body.
    """
    frames, consumed, ok = split_frames(buffer, decode)
    if not ok:
        raise NetworkError(f"frame length exceeds limit at offset {consumed}")
    return frames, bytes(buffer[consumed:])


def drain_frames(buffer: bytearray,
                 decode_body: Callable[[Any], Any] = None,
                 on_bad: Callable[[NetworkError], None] = None,
                 ) -> Tuple[list, bool]:
    """Consume complete frames from ``buffer`` in place.

    The transport's streaming entry point: ``buffer`` is a ``bytearray``
    that grows by ``+=`` (amortised O(1)) and is compacted exactly once per
    call (``del buffer[:consumed]``), so bursty links cost O(n) instead of
    the old per-frame re-slicing O(n²).  Returns ``(frames, ok)`` with
    ``ok = False`` on a corrupt length prefix (drop the connection); frames
    with undecodable bodies are skipped via ``on_bad`` (see
    :func:`split_frames`).
    """
    frames, consumed, ok = split_frames(buffer, decode_body or decode, on_bad)
    if consumed:
        del buffer[:consumed]
    return frames, ok


def get_codec(name: str):
    """The codec module registered under ``name`` (``json`` or ``binary``).

    Both codecs expose the same API surface: ``encode`` / ``decode`` /
    ``frame`` / ``frame_route`` / ``frame_route_parts`` / ``read_frames`` /
    ``drain_frames``.
    """
    import sys

    if name == "json":
        return sys.modules[__name__]
    if name == "binary":
        from repro.env import wire

        return wire
    raise NetworkError(
        f"unknown wire codec {name!r}; choose one of {list(CODEC_NAMES)}")
