"""Wire codec: protocol messages ⇄ length-prefixed JSON frames.

The real-time TCP transport needs a serialization for the protocol's frozen
dataclasses (requests, votes, multicasts, signatures).  msgpack is not a
hard dependency of this library, so the frame body is JSON with a small
tagging scheme for the Python types JSON cannot express:

* ``{"!b": "<base64>"}`` — ``bytes`` (digests, signature tags);
* ``{"!t": [...]}`` — ``tuple``;
* ``{"!fs": [...]}`` — ``frozenset`` (destination sets);
* ``{"!m": [[k, v], ...]}`` — ``dict`` with arbitrary keys;
* ``{"!d": "<TypeName>", "f": {...}}`` — a registered frozen dataclass.

Every message type of the broadcast and multicast layers is pre-registered;
applications with custom command dataclasses call :func:`register_wire_type`
once at startup.  Frames are ``>I``-length-prefixed so they can be streamed
over TCP (see :class:`repro.env.tcp.TcpTransport`).
"""

from __future__ import annotations

import base64
import dataclasses
import json
import struct
from typing import Any, Dict, Tuple, Type

from repro.crypto import cache as _cache
from repro.errors import NetworkError

_LENGTH = struct.Struct(">I")
#: refuse to decode frames above this size (corrupt length prefix guard)
MAX_FRAME = 64 * 1024 * 1024

_REGISTRY: Dict[str, Type] = {}


def register_wire_type(cls: Type) -> Type:
    """Register a frozen dataclass for wire encoding; returns ``cls``.

    Usable as a decorator on application-defined command types.
    """
    if not dataclasses.is_dataclass(cls):
        raise TypeError(f"{cls!r} is not a dataclass")
    name = cls.__name__
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise NetworkError(f"wire type name collision: {name!r}")
    _REGISTRY[name] = cls
    return cls


def _register_builtin_types() -> None:
    from repro.bcast import messages as bmsg
    from repro.bcast.reconfig import Reconfig, View
    from repro.core import messages as cmsg
    from repro.crypto.signatures import Signature
    from repro.types import Delivery, MessageId, MulticastMessage

    for cls in (
        bmsg.Request, bmsg.Propose, bmsg.Write, bmsg.Accept, bmsg.Reply,
        bmsg.Stop, bmsg.StopData, bmsg.Sync, bmsg.Heartbeat, bmsg.CertReport,
        bmsg.StateRequest, bmsg.StateResponse,
        cmsg.WireMulticast, cmsg.MulticastReply,
        Reconfig, View, Signature, MessageId, MulticastMessage, Delivery,
    ):
        register_wire_type(cls)


def _to_jsonable(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, bytes):
        return {"!b": base64.b64encode(value).decode("ascii")}
    if isinstance(value, tuple):
        return {"!t": [_to_jsonable(v) for v in value]}
    if isinstance(value, (frozenset, set)):
        # Sort for a canonical frame; protocol sets hold comparable strings.
        return {"!fs": [_to_jsonable(v) for v in sorted(value)]}
    if isinstance(value, list):
        return [_to_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {"!m": [[_to_jsonable(k), _to_jsonable(v)] for k, v in value.items()]}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        name = type(value).__name__
        if _REGISTRY.get(name) is not type(value):
            raise NetworkError(
                f"cannot encode unregistered dataclass {name!r}; "
                f"call repro.env.codec.register_wire_type({name})"
            )
        fields = {
            f.name: _to_jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {"!d": name, "f": fields}
    raise NetworkError(f"cannot encode value of type {type(value).__name__!r}")


def _from_jsonable(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        return [_from_jsonable(v) for v in value]
    if isinstance(value, dict):
        if "!b" in value:
            return base64.b64decode(value["!b"])
        if "!t" in value:
            return tuple(_from_jsonable(v) for v in value["!t"])
        if "!fs" in value:
            return frozenset(_from_jsonable(v) for v in value["!fs"])
        if "!m" in value:
            return {_from_jsonable(k): _from_jsonable(v) for k, v in value["!m"]}
        if "!d" in value:
            cls = _REGISTRY.get(value["!d"])
            if cls is None:
                raise NetworkError(f"unknown wire type {value['!d']!r}")
            fields = {k: _from_jsonable(v) for k, v in value["f"].items()}
            return cls(**fields)
    raise NetworkError(f"malformed wire value: {value!r}")


def encode(obj: Any) -> bytes:
    """Serialize ``obj`` to a JSON frame body (no length prefix).

    Encodings of registered dataclass messages are memoised by object
    identity: a broadcast sends the identical Propose/Write/Accept object to
    every peer, and without the cache each send re-walks the object graph.
    """
    if not _REGISTRY:
        _register_builtin_types()
    cacheable = (
        _cache.enabled()
        and dataclasses.is_dataclass(obj)
        and not isinstance(obj, type)
    )
    if cacheable:
        cached = _cache.encode_cache.get(obj)
        if cached is not None:
            return cached
    body = json.dumps(_to_jsonable(obj), separators=(",", ":")).encode("utf-8")
    if cacheable:
        _cache.encode_cache.put(obj, body)
    return body


def decode(body: bytes) -> Any:
    """Inverse of :func:`encode`."""
    if not _REGISTRY:
        _register_builtin_types()
    return _from_jsonable(json.loads(body.decode("utf-8")))


def frame(obj: Any) -> bytes:
    """Encode ``obj`` as one length-prefixed frame ready to write."""
    body = encode(obj)
    if len(body) > MAX_FRAME:
        raise NetworkError(f"frame too large: {len(body)} bytes")
    return _LENGTH.pack(len(body)) + body


def frame_route(src: str, dst: str, payload: Any) -> bytes:
    """One framed ``(src, dst, payload)`` routing tuple, payload encoded once.

    Byte-identical to ``frame((src, dst, payload))`` but splices the two
    route strings around the memoised payload body instead of re-walking the
    payload object graph — a broadcast to ``n - 1`` peers pays the payload
    encoding once instead of once per recipient.
    """
    body = (b'{"!t":[' + json.dumps(src).encode("utf-8") + b","
            + json.dumps(dst).encode("utf-8") + b","
            + encode(payload) + b"]}")
    if len(body) > MAX_FRAME:
        raise NetworkError(f"frame too large: {len(body)} bytes")
    return _LENGTH.pack(len(body)) + body


def read_frames(buffer: bytes) -> Tuple[list, bytes]:
    """Split ``buffer`` into complete decoded frames + unconsumed remainder."""
    out = []
    while len(buffer) >= _LENGTH.size:
        (length,) = _LENGTH.unpack_from(buffer)
        if length > MAX_FRAME:
            raise NetworkError(f"frame length {length} exceeds limit")
        end = _LENGTH.size + length
        if len(buffer) < end:
            break
        out.append(decode(buffer[_LENGTH.size:end]))
        buffer = buffer[end:]
    return out, buffer
