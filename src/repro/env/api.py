"""Execution-backend interfaces: Clock, Executor, Transport, Runtime.

The protocol stack (``repro.bcast``, ``repro.core``, ``repro.workload``)
is written against these interfaces only, never against a concrete
backend.  Two backends ship with the library:

* :class:`repro.env.simbackend.SimRuntime` — the deterministic
  discrete-event simulator (virtual time, CPU-cost accounting, latency
  models).  Bit-identical traces for a given seed.
* :class:`repro.env.rtbackend.RealtimeRuntime` — a real-time asyncio
  runtime (wall-clock timers, CPU costs are accounting-only no-ops,
  in-process queue or TCP transports).

The contracts below are what the backend-conformance suite
(``tests/env/test_conformance.py``) verifies on every backend:

* **Clock** — timers fire in deadline order; ties fire in scheduling
  order; a cancelled timer never fires.
* **Executor** — jobs submitted to one executor complete FIFO.
* **Transport** — per-link FIFO delivery; unknown endpoints raise
  :class:`~repro.errors.NetworkError`; duplicate registration raises;
  partitioned links drop silently (counted on the monitor).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Optional, Protocol, Tuple, Union, runtime_checkable


@runtime_checkable
class TimerHandle(Protocol):
    """Handle for a scheduled timer; allows cancellation."""

    def cancel(self) -> None:
        """Prevent the timer from firing.  Idempotent."""


@runtime_checkable
class Clock(Protocol):
    """A source of time plus one-shot timer scheduling.

    ``now`` is seconds since the runtime's origin — virtual seconds under
    simulation, wall-clock seconds (monotonic) under the real-time backend.
    """

    @property
    def now(self) -> float:
        """Current time in seconds."""
        ...

    def schedule(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        """Run ``callback`` after ``delay`` seconds; returns a cancellable handle."""
        ...

    def schedule_at(self, time: float, callback: Callable[[], None]) -> TimerHandle:
        """Run ``callback`` at absolute time ``time`` (on this clock)."""
        ...


@runtime_checkable
class Executor(Protocol):
    """A node's CPU: serializes work and accounts for service time.

    Under simulation this is a single-server FIFO queue whose service
    times produce the saturation/queueing behaviour the paper measures.
    Under the real-time backend service times are recorded for statistics
    but not waited out — the host CPU is the real resource.
    """

    @property
    def backlog(self) -> float:
        """Seconds of queued work ahead of a job submitted right now."""
        ...

    def submit(self, service_time: float, callback: Callable[[], None]) -> float:
        """Enqueue a job of ``service_time`` seconds; FIFO completion order."""
        ...

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds spent serving jobs."""
        ...


@runtime_checkable
class Transport(Protocol):
    """Named endpoints with point-to-point send and link shaping."""

    def register(self, actor: Any, site: str = "site0") -> None:
        """Attach ``actor`` at ``site``; its name becomes its address."""
        ...

    def site_of(self, name: str) -> str:
        """The site an endpoint was registered at."""
        ...

    def endpoints(self) -> Tuple[str, ...]:
        """All registered endpoint names."""
        ...

    def send(self, src: str, dst: str, payload: Any, size: int = 64) -> None:
        """Deliver ``payload`` from ``src`` to ``dst`` (per-link FIFO)."""
        ...

    def partition(self, a: str, b: str, *, sites: bool = False) -> None:
        """Block traffic in both directions between two endpoints or sites."""
        ...

    def heal(self, a: str, b: str, *, sites: bool = False) -> None:
        """Undo :meth:`partition` for the given pair."""
        ...

    def heal_all(self) -> None:
        """Remove every partition."""
        ...


class Runtime(ABC):
    """Facade bundling a clock, a transport and per-node executors.

    Deployments own exactly one runtime; every actor they build draws its
    clock, CPU executor and network transport from it.  ``deterministic``
    tells callers whether two runs with the same seed produce identical
    traces (true only for the simulation backend).
    """

    #: True iff same-seed runs produce bit-identical traces.
    deterministic: bool = False

    @property
    @abstractmethod
    def clock(self) -> Clock:
        """The shared clock."""

    @property
    @abstractmethod
    def transport(self) -> Optional[Transport]:
        """The shared message transport (``None`` for bare-clock adapters)."""

    @abstractmethod
    def create_executor(self) -> Executor:
        """A fresh CPU executor for one node."""

    @abstractmethod
    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Advance the runtime to time ``until`` (on its own clock).

        ``max_events`` is the simulation backend's livelock valve; the
        real-time backend ignores it (wall-clock bounds the run instead).
        """

    @abstractmethod
    def stop(self) -> None:
        """Make the currently running :meth:`run` return early."""

    def run_until(self, predicate: Callable[[], bool], timeout: float,
                  poll: float = 0.05) -> bool:
        """Run until ``predicate()`` holds or ``timeout`` seconds elapsed.

        Returns True iff the predicate held.  Works on any backend by
        advancing the clock in ``poll``-sized chunks.
        """
        deadline = self.clock.now + timeout
        while not predicate():
            now = self.clock.now
            if now >= deadline:
                return False
            self.run(until=min(now + poll, deadline))
        return True

    def close(self) -> None:
        """Release backend resources (sockets, event loops).  Idempotent."""


#: What actor constructors accept: a full runtime, or (legacy) a bare clock
#: such as the simulator's :class:`~repro.sim.events.EventLoop`.
RuntimeOrClock = Union[Runtime, Clock]
