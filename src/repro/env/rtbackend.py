"""Real-time asyncio backend: wall-clock timers, in-process queue transport.

Where the simulation backend models CPU service times and link latencies,
the real-time backend *is* subject to them: timers are wall-clock
(``asyncio`` ``call_later``), CPU "costs" become accounting-only no-ops
(the host CPU is the real resource), and messages travel through the
asyncio ready queue (strict FIFO) — or over real TCP sockets with the
optional :class:`~repro.env.tcp.TcpTransport`.

What is and is not modeled here:

* **modeled** — message passing, per-link FIFO, partitions/drops for fault
  experiments, optional link-latency shaping (sampled from the same
  :mod:`repro.sim.latency` models, applied as real ``call_later`` delays);
* **not modeled** — CPU service times (jobs run back-to-back on the host)
  and bandwidth; throughput numbers from this backend reflect the host
  machine, not the paper's calibrated cost model.

Determinism is **not** guaranteed: wall-clock timer interleavings vary run
to run.  Use the simulation backend for reproducible experiments.
"""

from __future__ import annotations

import asyncio
import inspect
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.errors import NetworkError, SimulationError
from repro.env.api import Clock, Executor, Runtime, TimerHandle, Transport
from repro.env.monitor import Monitor
from repro.sim.latency import ConstantLatency
from repro.sim.network import NetworkConfig
from repro.sim.rng import SeededRng


def realtime_network_config() -> NetworkConfig:
    """Default shaping for real-time runs: no artificial latency or drops."""
    return NetworkConfig(latency=ConstantLatency(0.0))


class RealtimeClock:
    """Monotonic wall-clock seconds since the runtime was created."""

    def __init__(self, aloop: asyncio.AbstractEventLoop) -> None:
        self._aloop = aloop
        self._origin = aloop.time()

    @property
    def now(self) -> float:
        return self._aloop.time() - self._origin

    def schedule(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        return self._aloop.call_later(delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> TimerHandle:
        return self.schedule(time - self.now, callback)


class RealtimeExecutor:
    """Accounting-only CPU: jobs run on the next loop tick, strictly FIFO.

    Service times are recorded (``jobs_done``, ``busy_time``) so capacity
    statistics stay meaningful, but the callback is not delayed — in real
    time the host CPU is the resource being spent.  Using ``call_soon``
    (a deque, not the timer heap) guarantees FIFO completion order.
    """

    def __init__(self, aloop: asyncio.AbstractEventLoop, clock: RealtimeClock) -> None:
        self._aloop = aloop
        self._clock = clock
        self.jobs_done = 0
        self.busy_time = 0.0

    @property
    def backlog(self) -> float:
        return 0.0

    def submit(self, service_time: float, callback: Callable[[], None]) -> float:
        if service_time < 0:
            raise ValueError("service time must be non-negative")
        self.jobs_done += 1
        self.busy_time += service_time
        self._aloop.call_soon(callback)
        return self._clock.now

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)


class InProcessTransport:
    """Named endpoints delivering through the asyncio ready queue.

    Semantics mirror :class:`~repro.sim.network.Network`: unknown endpoints
    raise, partitioned/dropped messages vanish silently but are counted,
    and delivery is FIFO per link.  Latency shaping (``config.latency``)
    is applied as real ``call_later`` delays; per-link delivery times are
    clamped monotonically so shaped links still deliver FIFO even when the
    sampled delays would reorder.
    """

    def __init__(
        self,
        aloop: asyncio.AbstractEventLoop,
        clock: RealtimeClock,
        config: Optional[NetworkConfig] = None,
        rng: Optional[SeededRng] = None,
        monitor: Optional[Monitor] = None,
    ) -> None:
        self._aloop = aloop
        self._clock = clock
        self.config = config if config is not None else realtime_network_config()
        self.monitor = monitor if monitor is not None else Monitor()
        self._rng = (rng if rng is not None else SeededRng(0)).stream("network")
        self._endpoints: Dict[str, Tuple[Any, str]] = {}
        self._blocked_pairs: Set[Tuple[str, str]] = set()
        self._blocked_sites: Set[Tuple[str, str]] = set()
        self._link_due: Dict[Tuple[str, str], float] = {}

    # -- registration ------------------------------------------------------

    def register(self, actor: Any, site: str = "site0") -> None:
        if actor.name in self._endpoints:
            raise NetworkError(f"endpoint {actor.name!r} already registered")
        self._endpoints[actor.name] = (actor, site)
        actor.network = self

    def site_of(self, name: str) -> str:
        return self._endpoints[name][1]

    def endpoints(self) -> Tuple[str, ...]:
        return tuple(self._endpoints)

    # -- partitions --------------------------------------------------------

    def partition(self, a: str, b: str, *, sites: bool = False) -> None:
        target = self._blocked_sites if sites else self._blocked_pairs
        target.add((a, b))
        target.add((b, a))

    def heal(self, a: str, b: str, *, sites: bool = False) -> None:
        target = self._blocked_sites if sites else self._blocked_pairs
        target.discard((a, b))
        target.discard((b, a))

    def heal_all(self) -> None:
        self._blocked_pairs.clear()
        self._blocked_sites.clear()

    # -- sending -----------------------------------------------------------

    def send(self, src: str, dst: str, payload: Any, size: int = 64) -> None:
        if dst not in self._endpoints:
            raise NetworkError(f"unknown destination endpoint {dst!r}")
        if src not in self._endpoints:
            raise NetworkError(f"unknown source endpoint {src!r}")
        self.monitor.count("net.sent")
        if (src, dst) in self._blocked_pairs:
            self.monitor.count("net.partitioned")
            return
        src_site = self.site_of(src)
        dst_site = self.site_of(dst)
        if (src_site, dst_site) in self._blocked_sites:
            self.monitor.count("net.partitioned")
            return
        if self.config.drop_rate > 0 and self._rng.random() < self.config.drop_rate:
            self.monitor.count("net.dropped")
            return
        delay = self.config.latency.delay(src_site, dst_site, self._rng)
        if self.config.bandwidth:
            delay += size / self.config.bandwidth
        actor = self._endpoints[dst][0]
        if delay <= 0:
            # The ready queue is a plain deque — strict global FIFO.
            self._aloop.call_soon(actor.receive, src, payload)
            return
        # Shaped link: clamp per-link delivery times to be strictly
        # increasing, since asyncio's timer heap does not promise stable
        # ordering for equal deadlines.
        now = self._clock.now
        due = max(now + delay, self._link_due.get((src, dst), 0.0) + 1e-9)
        self._link_due[(src, dst)] = due
        self._aloop.call_later(max(0.0, due - now), actor.receive, src, payload)


class RealtimeRuntime(Runtime):
    """Real-time execution on a private asyncio event loop.

    ``run(until=...)`` interprets ``until`` on the runtime's own clock
    (seconds since creation), mirroring the simulator's absolute-time
    semantics; ``stop()`` may be called from any actor callback to end the
    run early (e.g. once a workload completed).  Call :meth:`close` when
    done to release the event loop.
    """

    deterministic = False

    def __init__(
        self,
        network_config: Optional[NetworkConfig] = None,
        seed: int = 1,
        trace_capacity: int = 0,
        monitor: Optional[Monitor] = None,
        transport_factory: Optional[Callable[..., Transport]] = None,
        wire: str = "json",
    ) -> None:
        self._aloop = asyncio.new_event_loop()
        self._clock = RealtimeClock(self._aloop)
        self.monitor = monitor if monitor is not None else Monitor(
            trace_capacity=trace_capacity
        )
        self.monitor.bind_clock(lambda: self._clock.now)
        self.rng = SeededRng(seed)
        self.wire = wire
        factory = transport_factory if transport_factory is not None else InProcessTransport
        kwargs = dict(config=network_config, rng=self.rng, monitor=self.monitor)
        # The wire codec only applies to serializing transports: TcpTransport
        # declares a ``wire`` parameter, the in-process queue transport
        # passes message objects by reference and does not.
        try:
            if "wire" in inspect.signature(factory).parameters:
                kwargs["wire"] = wire
        except (TypeError, ValueError):
            pass
        self.network = factory(self._aloop, self._clock, **kwargs)
        self._closed = False

    @property
    def asyncio_loop(self) -> asyncio.AbstractEventLoop:
        """The underlying asyncio loop (for transports needing coroutines)."""
        return self._aloop

    # -- Runtime interface -------------------------------------------------

    @property
    def clock(self) -> Clock:
        return self._clock

    @property
    def transport(self) -> Optional[Transport]:
        return self.network

    def create_executor(self) -> Executor:
        return RealtimeExecutor(self._aloop, self._clock)

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        if self._closed:
            raise RuntimeError("runtime is closed")
        deadline = None
        if until is not None:
            remaining = until - self._clock.now
            if remaining <= 0:
                return
            deadline = self._aloop.call_later(remaining, self._aloop.stop)
        try:
            self._aloop.run_forever()
        finally:
            if deadline is not None:
                deadline.cancel()

    def stop(self) -> None:
        self._aloop.stop()

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            started = getattr(self.network, "shutdown", None)
            if started is not None:
                started()
            self._aloop.close()
