"""Execution-environment abstraction: the protocol stack's only runtime API.

``repro.env`` decouples the ByzCast protocol stack from any particular
execution substrate.  Protocol modules (``repro.bcast``, ``repro.core``,
``repro.workload``) import *only* from here — never from ``repro.sim``
directly (enforced by ``tests/env/test_import_hygiene.py``) — so the same
replicas, clients and applications run under:

* the **deterministic simulator** (default):
  ``make_runtime("sim", seed=...)`` — virtual time, calibrated CPU costs,
  latency models, bit-identical traces per seed;
* the **real-time asyncio runtime**:
  ``make_runtime("asyncio")`` — wall-clock timers, in-process queue or TCP
  transports, no CPU modeling.

Shared building blocks (:class:`Actor`, :class:`Monitor`) live here;
sim-flavoured configuration types (:class:`NetworkConfig`, the latency
models, :class:`SeededRng`) are re-exported lazily so that importing
``repro.env`` never drags in a backend.
"""

from repro.env.api import (
    Clock,
    Executor,
    Runtime,
    RuntimeOrClock,
    TimerHandle,
    Transport,
)
from repro.env.monitor import Monitor, TraceRecord
from repro.env.actor import Actor

#: names re-exported lazily from the simulation kernel (shared config/value
#: types usable by either backend — latency models are pure samplers) and
#: from optional env extensions (the chaos layer).
_LAZY_REEXPORTS = {
    "ChaosConfig": "repro.env.chaos",
    "ChaosTransport": "repro.env.chaos",
    "install_chaos": "repro.env.chaos",
    "NetworkConfig": "repro.sim.network",
    "LatencyModel": "repro.sim.latency",
    "ConstantLatency": "repro.sim.latency",
    "JitterLatency": "repro.sim.latency",
    "LogNormalLatency": "repro.sim.latency",
    "MatrixLatency": "repro.sim.latency",
    "SeededRng": "repro.sim.rng",
}

#: backend name → (module, class); extendable by downstream code
BACKENDS = {
    "sim": ("repro.env.simbackend", "SimRuntime"),
    "asyncio": ("repro.env.rtbackend", "RealtimeRuntime"),
    "rt": ("repro.env.rtbackend", "RealtimeRuntime"),
    "realtime": ("repro.env.rtbackend", "RealtimeRuntime"),
}


def make_runtime(backend: str = "sim", **kwargs) -> Runtime:
    """Build an execution runtime by backend name.

    >>> runtime = make_runtime("sim", seed=7)
    >>> runtime.deterministic
    True
    """
    import importlib

    try:
        module_name, class_name = BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown execution backend {backend!r}; "
            f"choose one of {sorted(set(BACKENDS))}"
        ) from None
    module = importlib.import_module(module_name)
    return getattr(module, class_name)(**kwargs)


def __getattr__(name):
    module_name = _LAZY_REEXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


__all__ = [
    "Actor",
    "Clock",
    "Executor",
    "Monitor",
    "Runtime",
    "RuntimeOrClock",
    "TimerHandle",
    "TraceRecord",
    "Transport",
    "make_runtime",
    "BACKENDS",
    *sorted(_LAZY_REEXPORTS),
]
