"""Chaos-engineering transport: seeded fault injection over any backend.

:class:`ChaosTransport` is a decorator conforming to the
:class:`~repro.env.api.Transport` protocol.  It wraps any inner transport —
the simulator's :class:`~repro.sim.network.Network`, the real-time
:class:`~repro.env.rtbackend.InProcessTransport`, or the socket-backed
:class:`~repro.env.tcp.TcpTransport` — and injects faults *above* the
inner transport's own shaping, so the same chaos semantics hold on every
execution backend:

* **drops** — i.i.d. message loss at ``drop_rate``;
* **duplication** — a second delivery of the same payload at ``dup_rate``;
* **corruption** — one ``bytes`` field (a signature tag or digest) of the
  payload gets a bit flipped at ``corrupt_rate``, exercising the protocol's
  signature/digest rejection paths; payloads with no ``bytes`` field are
  dropped instead (there is nothing to corrupt that a checksum would catch);
* **extra delay / reordering** — at ``delay_rate`` a message is held back a
  random extra interval before reaching the inner transport, which reorders
  it relative to later traffic on the same link;
* **link flapping** — :meth:`flap_link` toggles a partition on and off;
* **burst windows** — :meth:`burst` raises the rates for a bounded window
  and restores them afterwards;
* **targeted slowdown** — :meth:`delay_endpoint` adds a fixed extra delay
  to all traffic touching one endpoint (e.g. the current leader).

Every injected event is counted on the shared monitor under ``chaos.*``
keys.  All randomness comes from a dedicated seeded stream, so under the
simulation backend a chaos run is exactly as reproducible as a fault-free
one, and wrapping a transport without enabling any rate is a no-op for the
golden traces.

Use :func:`install_chaos` to wrap a runtime's transport in place *before*
building a deployment on it.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.env.api import Clock, Transport
from repro.env.monitor import Monitor


@dataclass
class ChaosConfig:
    """Tunable chaos rates (all probabilities are i.i.d. per message).

    Attributes:
        drop_rate: probability a message is silently discarded.
        dup_rate: probability a message is delivered twice.
        corrupt_rate: probability one ``bytes`` field of the payload gets a
            flipped bit (un-corruptible payloads are dropped instead).
        delay_rate: probability a message is held back before the inner
            transport sees it (which may reorder it on its link).
        delay_min: lower bound of the sampled extra delay, seconds.
        delay_max: upper bound of the sampled extra delay, seconds.
    """

    drop_rate: float = 0.0
    dup_rate: float = 0.0
    corrupt_rate: float = 0.0
    delay_rate: float = 0.0
    delay_min: float = 0.001
    delay_max: float = 0.05

    RATE_FIELDS = ("drop_rate", "dup_rate", "corrupt_rate", "delay_rate")


def corrupt_payload(payload: Any, rng: random.Random) -> Tuple[Any, bool]:
    """Flip one bit in one randomly chosen ``bytes`` field of ``payload``.

    Walks frozen dataclasses and tuples recursively, collects every
    non-empty ``bytes`` leaf (signature tags, digests), and rebuilds the
    payload with a single bit flipped in one of them.  Returns
    ``(corrupted, True)``, or ``(payload, False)`` when the payload carries
    no ``bytes`` field at all — the caller should treat that case as a drop.
    """
    paths = []

    def walk(obj: Any, path: Tuple) -> None:
        if isinstance(obj, bytes) and obj:
            paths.append(path)
        elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
            for f in dataclasses.fields(obj):
                walk(getattr(obj, f.name), path + (("f", f.name),))
        elif isinstance(obj, tuple):
            for index, value in enumerate(obj):
                walk(value, path + (("i", index),))

    walk(payload, ())
    if not paths:
        return payload, False
    target = paths[rng.randrange(len(paths))]

    def rebuild(obj: Any, path: Tuple) -> Any:
        if not path:
            data = bytearray(obj)
            data[rng.randrange(len(data))] ^= 1 << rng.randrange(8)
            return bytes(data)
        kind, key = path[0]
        if kind == "f":
            return dataclasses.replace(obj, **{key: rebuild(getattr(obj, key), path[1:])})
        return tuple(
            rebuild(value, path[1:]) if index == key else value
            for index, value in enumerate(obj)
        )

    return rebuild(payload, target), True


class ChaosTransport:
    """A :class:`~repro.env.api.Transport` decorator injecting faults.

    Args:
        inner: the wrapped transport; registration, sites, partitions and
            final delivery all delegate to it.
        clock: the runtime's clock, used for delayed (re-ordered) delivery,
            burst windows and link flapping.
        config: initial chaos rates (default: everything off).
        rng: seeded stream factory; chaos draws from its own ``"chaos"``
            stream so enabling chaos never perturbs the inner transport's
            latency/drop draws.
        monitor: shared monitor; injected events are counted as ``chaos.*``.
    """

    def __init__(
        self,
        inner: Transport,
        clock: Clock,
        config: Optional[ChaosConfig] = None,
        rng: Any = None,
        monitor: Optional[Monitor] = None,
    ) -> None:
        self._inner = inner
        self._clock = clock
        self.config = config if config is not None else ChaosConfig()
        self.monitor = monitor if monitor is not None else Monitor()
        # rng is a SeededRng-like stream factory; chaos owns its own named
        # stream so enabling it never perturbs the inner transport's draws.
        self._rng = rng.stream("chaos") if rng is not None else random.Random(0)
        self._endpoint_delay: Dict[str, float] = {}

    @property
    def inner(self) -> Transport:
        """The wrapped transport."""
        return self._inner

    # -- Transport protocol (delegation) -----------------------------------

    def register(self, actor: Any, site: str = "site0") -> None:
        self._inner.register(actor, site)
        # The inner transport re-pointed the actor at itself; re-attach so
        # outgoing traffic keeps flowing through the chaos layer.
        actor.network = self

    def site_of(self, name: str) -> str:
        return self._inner.site_of(name)

    def endpoints(self) -> Tuple[str, ...]:
        return self._inner.endpoints()

    def partition(self, a: str, b: str, *, sites: bool = False) -> None:
        self._inner.partition(a, b, sites=sites)

    def heal(self, a: str, b: str, *, sites: bool = False) -> None:
        self._inner.heal(a, b, sites=sites)

    def heal_all(self) -> None:
        self._inner.heal_all()

    def shutdown(self) -> None:
        """Forward lifecycle teardown to inner transports that need it."""
        fn = getattr(self._inner, "shutdown", None)
        if fn is not None:
            fn()

    # -- chaos injection ----------------------------------------------------

    def send(self, src: str, dst: str, payload: Any, size: int = 64) -> None:
        cfg = self.config
        rng = self._rng
        if cfg.drop_rate and rng.random() < cfg.drop_rate:
            self.monitor.count("chaos.dropped")
            return
        if cfg.corrupt_rate and rng.random() < cfg.corrupt_rate:
            payload, corrupted = corrupt_payload(payload, rng)
            if corrupted:
                self.monitor.count("chaos.corrupted")
            else:
                self.monitor.count("chaos.dropped")
                return
        copies = 1
        if cfg.dup_rate and rng.random() < cfg.dup_rate:
            copies = 2
            self.monitor.count("chaos.duplicated")
        extra = self._endpoint_delay.get(src, 0.0) + self._endpoint_delay.get(dst, 0.0)
        if cfg.delay_rate and rng.random() < cfg.delay_rate:
            extra += rng.uniform(cfg.delay_min, cfg.delay_max)
            self.monitor.count("chaos.delayed")
        for _ in range(copies):
            if extra > 0:
                self._clock.schedule(
                    extra,
                    lambda p=payload: self._inner.send(src, dst, p, size),
                )
            else:
                self._inner.send(src, dst, payload, size)

    # -- scheduled chaos ops -------------------------------------------------

    def burst(self, duration: float, **rates: float) -> None:
        """Raise chaos rates for ``duration`` seconds, then restore them.

        ``rates`` are :class:`ChaosConfig` field names.  Windows must not
        overlap (the nemesis generator emits disjoint windows); overlapping
        bursts would restore each other's elevated values.
        """
        for name in rates:
            if name not in ChaosConfig.RATE_FIELDS:
                raise ValueError(f"unknown chaos rate {name!r}")
        saved = {name: getattr(self.config, name) for name in rates}
        for name, value in rates.items():
            setattr(self.config, name, value)
        self.monitor.count("chaos.burst")

        def restore() -> None:
            for name, value in saved.items():
                setattr(self.config, name, value)

        self._clock.schedule(duration, restore)

    def delay_endpoint(self, name: str, extra: float,
                       duration: Optional[float] = None) -> None:
        """Add ``extra`` seconds to every message from/to ``name``.

        With ``duration``, the slowdown clears automatically; otherwise call
        :meth:`clear_delay` (or :meth:`calm`).
        """
        self._endpoint_delay[name] = extra
        self.monitor.count("chaos.endpoint_delayed")
        if duration is not None:
            self._clock.schedule(duration, lambda: self.clear_delay(name))

    def clear_delay(self, name: str) -> None:
        """Remove the targeted slowdown for ``name``.  Idempotent."""
        self._endpoint_delay.pop(name, None)

    def flap_link(self, a: str, b: str, period: float, cycles: int) -> None:
        """Partition/heal the ``a``–``b`` link ``cycles`` times.

        Each cycle is ``period`` seconds down followed by ``period`` seconds
        up; the link always ends healed.
        """
        if cycles <= 0:
            return
        for cycle in range(cycles):
            start = 2 * period * cycle

            def down() -> None:
                self._inner.partition(a, b)
                self.monitor.count("chaos.flap")

            self._clock.schedule(start, down)
            self._clock.schedule(start + period, lambda: self._inner.heal(a, b))

    def calm(self) -> None:
        """Reset every chaos rate and targeted delay to zero.

        Scheduled by the nemesis at its horizon so a soak run can quiesce;
        does *not* heal inner-transport partitions (the nemesis schedules
        its own heals, and scripted partitions stay under caller control).
        """
        for name in ChaosConfig.RATE_FIELDS:
            setattr(self.config, name, 0.0)
        self._endpoint_delay.clear()
        self.monitor.count("chaos.calm")


def install_chaos(runtime, config: Optional[ChaosConfig] = None) -> ChaosTransport:
    """Wrap ``runtime``'s transport in a :class:`ChaosTransport`, in place.

    Must run *before* building a deployment on the runtime so every actor
    registers through (and sends through) the chaos layer.  Returns the
    wrapper; the inner transport stays reachable as ``chaos.inner``.
    """
    if runtime.transport is None:
        raise ValueError("runtime has no transport to wrap")
    chaos = ChaosTransport(
        runtime.transport,
        clock=runtime.clock,
        config=config,
        rng=runtime.rng,
        monitor=runtime.monitor,
    )
    runtime.network = chaos
    return chaos
