"""Actor base class: a named process with a CPU executor and a mailbox.

Actors communicate exclusively through their runtime's
:class:`~repro.env.api.Transport` (no shared memory, no global state —
matching the system model of §II-A) and are backend-agnostic: the same
actor runs unmodified under the deterministic simulator and under the
real-time asyncio runtime.  Incoming messages are funneled through
:meth:`Actor.receive`, which charges the configured per-message CPU cost
before invoking :meth:`Actor.on_message`.  Subclasses implement
``on_message`` and may use :meth:`set_timer` for timeouts (leader-change
timers, client retransmission, ...).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.env.api import Runtime, RuntimeOrClock, TimerHandle
from repro.env.monitor import Monitor


class Actor:
    """A named process bound to an execution backend.

    Args:
        name: globally unique endpoint name; also the transport address.
        runtime: the deployment's :class:`~repro.env.api.Runtime` — or, for
            backward compatibility, a bare simulator ``EventLoop``, which is
            wrapped in a clock-only sim runtime on the fly.
        monitor: shared monitor for counters/trace.
        recv_cpu_cost: CPU service time charged for every received message
            before ``on_message`` runs (models deserialization + MAC check).
    """

    def __init__(
        self,
        name: str,
        runtime: RuntimeOrClock,
        monitor: Optional[Monitor] = None,
        recv_cpu_cost: float = 0.0,
    ) -> None:
        if not isinstance(runtime, Runtime):
            # Legacy construction from a bare EventLoop: adapt it into a
            # clock-only sim runtime (the transport attaches at register()).
            from repro.env.simbackend import SimRuntime

            runtime = SimRuntime.from_clock(runtime)
        self.name = name
        self.runtime = runtime
        self.clock = runtime.clock
        self.loop = runtime.clock  # compat alias: `actor.loop.now` is pervasive
        self.monitor = monitor if monitor is not None else Monitor()
        self.cpu = runtime.create_executor()
        self.recv_cpu_cost = recv_cpu_cost
        self.network = runtime.transport  # re-attached by Transport.register
        self.crashed = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Hook called once the deployment is wired up.  Default: no-op."""

    def crash(self) -> None:
        """Stop reacting to anything (benign crash).

        Timers set before the crash never fire their callback, and work
        already sitting in the CPU queue is dropped — on every backend.
        """
        self.crashed = True

    # -- messaging ---------------------------------------------------------

    def send(self, dst: str, payload: Any, size: int = 64) -> None:
        """Send ``payload`` to the actor named ``dst`` via the transport."""
        if self.crashed:
            return
        if self.network is None:
            raise RuntimeError(f"actor {self.name} is not attached to a transport")
        self.network.send(self.name, dst, payload, size)

    def receive(self, src: str, payload: Any) -> None:
        """Called by the transport on message arrival; charges CPU then handles."""
        if self.crashed:
            return
        if self.recv_cpu_cost > 0:
            self.cpu.submit(self.recv_cpu_cost, lambda: self._handle(src, payload))
        else:
            self._handle(src, payload)

    def _handle(self, src: str, payload: Any) -> None:
        if self.crashed:
            return
        self.on_message(src, payload)

    def on_message(self, src: str, payload: Any) -> None:
        """Handle a delivered message.  Subclasses must override."""
        raise NotImplementedError

    # -- timers ------------------------------------------------------------

    def set_timer(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        """Run ``callback`` after ``delay`` seconds unless cancelled/crashed."""

        def fire() -> None:
            if not self.crashed:
                callback()

        return self.clock.schedule(delay, fire)

    def work(self, service_time: float, callback: Callable[[], None]) -> None:
        """Charge ``service_time`` of CPU, then run ``callback``."""

        def fire() -> None:
            if not self.crashed:
                callback()

        self.cpu.submit(service_time, fire)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"
