"""Closed-loop client drivers (§IV: "clients run in a closed loop").

A driver owns one protocol client (ByzCast, Baseline, or single-group) and
keeps exactly one message in flight: the next message is multicast only
after the previous one completed.  Completions are recorded on the shared
latency collector and throughput meter, classified as local or global.
"""

from __future__ import annotations

import random
from typing import Any, Optional, Tuple

from repro.metrics.collector import LatencyCollector, ThroughputMeter
from repro.types import MulticastMessage
from repro.workload.spec import DestinationSampler


class ClosedLoopDriver:
    """Drives one client in a closed loop.

    Args:
        client: any object with ``amulticast(dst, payload, callback)`` and a
            ``loop`` attribute (all three protocol clients qualify).
        sampler: destination sampler invoked per message.
        rng: this driver's random stream.
        collector: records (completion time, latency) for every message.
        meter: throughput meter (counts completions in its window).
        local_collector / global_collector: optional per-class collectors
            for the mixed-workload CDF figures.
        payload: payload attached to every message (64-byte stand-in).
        think_time: seconds to wait between a completion and the next send.
        stop_after: stop issuing new messages past this virtual time.
    """

    def __init__(
        self,
        client: Any,
        sampler: DestinationSampler,
        rng: random.Random,
        collector: Optional[LatencyCollector] = None,
        meter: Optional[ThroughputMeter] = None,
        local_collector: Optional[LatencyCollector] = None,
        global_collector: Optional[LatencyCollector] = None,
        payload: Tuple = ("x",),
        think_time: float = 0.0,
        stop_after: Optional[float] = None,
    ) -> None:
        self.client = client
        self.sampler = sampler
        self.rng = rng
        self.collector = collector
        self.meter = meter
        self.local_collector = local_collector
        self.global_collector = global_collector
        self.payload = payload
        self.think_time = think_time
        self.stop_after = stop_after
        self.sent = 0
        self.completed = 0

    def start(self) -> None:
        """Issue the first message."""
        self._issue()

    def _issue(self) -> None:
        now = self.client.loop.now
        if self.stop_after is not None and now >= self.stop_after:
            return
        dst = self.sampler(self.rng)
        self.sent += 1
        self.client.amulticast(dst, payload=self.payload, callback=self._on_complete)

    def _on_complete(self, message: MulticastMessage, latency: float) -> None:
        now = self.client.loop.now
        self.completed += 1
        if self.collector is not None:
            self.collector.record(now, latency)
        if self.meter is not None:
            self.meter.record(now)
        if message.is_local and self.local_collector is not None:
            self.local_collector.record(now, latency)
        if message.is_global and self.global_collector is not None:
            self.global_collector.record(now, latency)
        if self.think_time > 0:
            self.client.set_timer(self.think_time, self._issue)
        else:
            self._issue()


class OpenLoopDriver:
    """Issues messages at a fixed Poisson rate, regardless of completions.

    Unlike the paper's closed-loop clients, an open-loop client does not
    throttle under load — useful for injecting an exact offered rate (e.g.
    to validate the optimizer's ``F(d)`` against a group's ``K(x)``) and
    for observing overload behaviour.  Use with care: past saturation the
    backlog grows without bound.
    """

    def __init__(
        self,
        client: Any,
        sampler: DestinationSampler,
        rng: random.Random,
        rate: float,
        collector: Optional[LatencyCollector] = None,
        meter: Optional[ThroughputMeter] = None,
        payload: Tuple = ("x",),
        stop_after: Optional[float] = None,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.client = client
        self.sampler = sampler
        self.rng = rng
        self.rate = rate
        self.collector = collector
        self.meter = meter
        self.payload = payload
        self.stop_after = stop_after
        self.sent = 0
        self.completed = 0

    def start(self) -> None:
        self._schedule_next()

    def _schedule_next(self) -> None:
        gap = self.rng.expovariate(self.rate)
        self.client.set_timer(gap, self._fire)

    def _fire(self) -> None:
        now = self.client.loop.now
        if self.stop_after is not None and now >= self.stop_after:
            return
        dst = self.sampler(self.rng)
        self.sent += 1
        self.client.amulticast(dst, payload=self.payload,
                               callback=self._on_complete)
        self._schedule_next()

    def _on_complete(self, message: MulticastMessage, latency: float) -> None:
        now = self.client.loop.now
        self.completed += 1
        if self.collector is not None:
            self.collector.record(now, latency)
        if self.meter is not None:
            self.meter.record(now)
