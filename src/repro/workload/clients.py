"""Client drivers: closed-loop (§IV) and open-loop arrival processes.

A driver owns one protocol client (ByzCast, Baseline, or single-group) and
issues multicasts according to an arrival discipline:

* :class:`ClosedLoopDriver` — the paper's clients: exactly one message in
  flight, the next is sent only after the previous completed (optionally
  after a think time);
* :class:`OpenLoopDriver` — Poisson arrivals at a fixed rate, regardless
  of completions (offered load does not throttle under pressure);
* :class:`BurstOpenLoopDriver` — on/off-modulated Poisson arrivals (bursts
  at a high rate separated by idle gaps);
* :class:`FlashCrowdDriver` — a Poisson base rate that steps to a multiple
  of itself for one bounded window (a flash crowd hitting the service);
* :class:`DiurnalDriver` — a sinusoidally modulated Poisson rate (a
  compressed day/night load shift).

Completions are recorded on the shared latency collector and throughput
meter, classified as local or global.  All drivers stop *cleanly* at
``stop_after``: pending think/arrival timers are cancelled rather than
left to fire into a drained EventLoop, so scale scenarios with thousands
of drivers quiesce without stragglers.

Instead of a destination sampler plus fixed payload, a driver may be given
an ``op_sampler`` — a callable ``rng -> (Destination, payload)`` — which
application workloads (e.g. :mod:`repro.apps.sharded_kv`) use to vary the
operation per message.
"""

from __future__ import annotations

import math
import random
from typing import Any, Callable, Optional, Tuple

from repro.metrics.collector import LatencyCollector, ThroughputMeter
from repro.types import Destination, MulticastMessage
from repro.workload.spec import DestinationSampler

#: ``rng -> (destination, payload)`` — one sampled operation
OpSampler = Callable[[random.Random], Tuple[Destination, Tuple]]


class _DriverBase:
    """Shared plumbing: sampling, metrics, clean stop."""

    def __init__(
        self,
        client: Any,
        sampler: Optional[DestinationSampler],
        rng: random.Random,
        collector: Optional[LatencyCollector] = None,
        meter: Optional[ThroughputMeter] = None,
        local_collector: Optional[LatencyCollector] = None,
        global_collector: Optional[LatencyCollector] = None,
        payload: Tuple = ("x",),
        stop_after: Optional[float] = None,
        op_sampler: Optional[OpSampler] = None,
        read_ratio: float = 0.0,
        read_mode: str = "optimistic",
        read_sampler: Optional[OpSampler] = None,
    ) -> None:
        if sampler is None and op_sampler is None:
            raise ValueError("need a destination sampler or an op_sampler")
        if not 0.0 <= read_ratio <= 1.0:
            raise ValueError("read_ratio must be in [0, 1]")
        if read_ratio > 0 and read_sampler is None:
            raise ValueError("read_ratio > 0 needs a read_sampler")
        self.client = client
        self.sampler = sampler
        self.rng = rng
        self.collector = collector
        self.meter = meter
        self.local_collector = local_collector
        self.global_collector = global_collector
        self.payload = payload
        self.stop_after = stop_after
        self.op_sampler = op_sampler
        #: the read-tier workload axis: with probability ``read_ratio`` an
        #: issued op is a read from ``read_sampler``, routed through
        #: ``client.aread`` in ``read_mode`` ("ordered" keeps the same op
        #: stream but pays the full multicast — the comparison baseline)
        self.read_ratio = read_ratio
        self.read_mode = read_mode
        self.read_sampler = read_sampler
        self.sent = 0
        self.completed = 0
        self.reads_sent = 0
        self._stopped = False
        self._timer = None  # the one pending think/arrival timer, if any

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        raise NotImplementedError

    def stop(self) -> None:
        """Stop issuing immediately and cancel any pending timer."""
        self._stopped = True
        self._cancel_timer()

    @property
    def now(self) -> float:
        return self.client.loop.now

    def _done(self, at: Optional[float] = None) -> bool:
        if self._stopped:
            return True
        if self.stop_after is None:
            return False
        return (at if at is not None else self.now) >= self.stop_after

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            try:
                self._timer.cancel()
            finally:
                self._timer = None

    def _set_timer(self, delay: float, callback: Callable[[], None]) -> None:
        """Arm the driver's single pending timer — but never past the stop.

        A timer that would only fire after ``stop_after`` is pointless
        work for the EventLoop (its callback would return immediately);
        skipping it is what lets long scale scenarios quiesce without
        straggler events.
        """
        if self._done() or self._done(at=self.now + delay):
            return
        self._timer = self.client.set_timer(delay, self._fire_timer(callback))

    def _fire_timer(self, callback: Callable[[], None]) -> Callable[[], None]:
        def fire() -> None:
            self._timer = None
            if not self._done():
                callback()

        return fire

    # -- issuing and accounting ------------------------------------------------

    def _send(self) -> None:
        if (self.read_ratio > 0
                and self.rng.random() < self.read_ratio):
            self._send_read()
            return
        if self.op_sampler is not None:
            dst, payload = self.op_sampler(self.rng)
        else:
            dst, payload = self.sampler(self.rng), self.payload
        self.sent += 1
        self.client.amulticast(dst, payload=payload, callback=self._on_complete)

    def _send_read(self) -> None:
        dst, payload = self.read_sampler(self.rng)
        self.sent += 1
        self.reads_sent += 1
        if self.read_mode == "ordered":
            # The comparison baseline: same read op, full ordered multicast.
            self.client.amulticast(dst, payload=payload,
                                   callback=self._on_complete)
            return
        group = sorted(dst)[0]
        self.client.aread(group, payload=payload, mode=self.read_mode,
                          callback=self._on_read_complete)

    def _record(self, message: MulticastMessage, latency: float) -> None:
        now = self.now
        self.completed += 1
        if self.collector is not None:
            self.collector.record(now, latency)
        if self.meter is not None:
            self.meter.record(now)
        if message.is_local and self.local_collector is not None:
            self.local_collector.record(now, latency)
        if message.is_global and self.global_collector is not None:
            self.global_collector.record(now, latency)

    def _on_complete(self, message: MulticastMessage, latency: float) -> None:
        self._record(message, latency)

    def _on_read_complete(self, outcome: Any) -> None:
        now = self.now
        self.completed += 1
        if self.collector is not None:
            self.collector.record(now, outcome.latency)
        if self.meter is not None:
            self.meter.record(now)
        # Reads target a single group: classified as local traffic.
        if self.local_collector is not None:
            self.local_collector.record(now, outcome.latency)
        self._post_read_complete()

    def _post_read_complete(self) -> None:
        """Hook: closed-loop drivers continue their loop after a read."""


class ClosedLoopDriver(_DriverBase):
    """Drives one client in a closed loop.

    Args:
        client: any object with ``amulticast(dst, payload, callback)`` and a
            ``loop`` attribute (all three protocol clients qualify).
        sampler: destination sampler invoked per message.
        rng: this driver's random stream.
        collector: records (completion time, latency) for every message.
        meter: throughput meter (counts completions in its window).
        local_collector / global_collector: optional per-class collectors
            for the mixed-workload CDF figures.
        payload: payload attached to every message (64-byte stand-in).
        think_time: seconds to wait between a completion and the next send.
        stop_after: stop issuing new messages past this virtual time.
        op_sampler: per-message ``rng -> (destination, payload)``; overrides
            ``sampler``/``payload`` when given.
    """

    def __init__(
        self,
        client: Any,
        sampler: Optional[DestinationSampler] = None,
        rng: Optional[random.Random] = None,
        collector: Optional[LatencyCollector] = None,
        meter: Optional[ThroughputMeter] = None,
        local_collector: Optional[LatencyCollector] = None,
        global_collector: Optional[LatencyCollector] = None,
        payload: Tuple = ("x",),
        think_time: float = 0.0,
        stop_after: Optional[float] = None,
        op_sampler: Optional[OpSampler] = None,
        read_ratio: float = 0.0,
        read_mode: str = "optimistic",
        read_sampler: Optional[OpSampler] = None,
    ) -> None:
        super().__init__(
            client, sampler, rng if rng is not None else random.Random(0),
            collector=collector, meter=meter,
            local_collector=local_collector,
            global_collector=global_collector,
            payload=payload, stop_after=stop_after, op_sampler=op_sampler,
            read_ratio=read_ratio, read_mode=read_mode,
            read_sampler=read_sampler,
        )
        self.think_time = think_time

    def start(self) -> None:
        """Issue the first message."""
        self._issue()

    def _issue(self) -> None:
        if self._done():
            return
        self._send()

    def _on_complete(self, message: MulticastMessage, latency: float) -> None:
        self._record(message, latency)
        self._post_read_complete()

    def _post_read_complete(self) -> None:
        """The loop continues on any completion — write, read or fallback."""
        if self.think_time > 0:
            self._set_timer(self.think_time, self._issue)
        else:
            self._issue()


class OpenLoopDriver(_DriverBase):
    """Issues messages at a fixed Poisson rate, regardless of completions.

    Unlike the paper's closed-loop clients, an open-loop client does not
    throttle under load — useful for injecting an exact offered rate (e.g.
    to validate the optimizer's ``F(d)`` against a group's ``K(x)``), for
    the scale suite's arrival processes, and for observing overload
    behaviour.  Use with care: past saturation the backlog grows without
    bound.
    """

    def __init__(
        self,
        client: Any,
        sampler: Optional[DestinationSampler] = None,
        rng: Optional[random.Random] = None,
        rate: float = 1.0,
        collector: Optional[LatencyCollector] = None,
        meter: Optional[ThroughputMeter] = None,
        local_collector: Optional[LatencyCollector] = None,
        global_collector: Optional[LatencyCollector] = None,
        payload: Tuple = ("x",),
        stop_after: Optional[float] = None,
        op_sampler: Optional[OpSampler] = None,
        read_ratio: float = 0.0,
        read_mode: str = "optimistic",
        read_sampler: Optional[OpSampler] = None,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        super().__init__(
            client, sampler, rng if rng is not None else random.Random(0),
            collector=collector, meter=meter,
            local_collector=local_collector,
            global_collector=global_collector,
            payload=payload, stop_after=stop_after, op_sampler=op_sampler,
            read_ratio=read_ratio, read_mode=read_mode,
            read_sampler=read_sampler,
        )
        self.rate = rate

    def start(self) -> None:
        self._schedule_next()

    def _schedule_next(self) -> None:
        self._set_timer(self.rng.expovariate(self.rate), self._fire)

    def _fire(self) -> None:
        self._send()
        self._schedule_next()


class BurstOpenLoopDriver(OpenLoopDriver):
    """On/off-modulated Poisson arrivals: flash crowds, diurnal shifts.

    The driver alternates between an *on* phase of ``burst_on`` seconds —
    Poisson arrivals at ``rate`` — and an *off* phase of ``burst_off``
    seconds with no arrivals at all.  ``burst_off = 0`` degenerates to the
    plain :class:`OpenLoopDriver`.  Phases are anchored at :meth:`start`,
    so drivers started together burst together (the interesting case for
    convoy effects at the root group).
    """

    def __init__(self, *args, burst_on: float = 0.5, burst_off: float = 0.5,
                 **kwargs) -> None:
        if burst_on <= 0:
            raise ValueError("burst_on must be positive")
        if burst_off < 0:
            raise ValueError("burst_off must be non-negative")
        super().__init__(*args, **kwargs)
        self.burst_on = burst_on
        self.burst_off = burst_off
        self._phase_start = 0.0

    def start(self) -> None:
        self._phase_start = self.now
        self._schedule_next()

    def _schedule_next(self) -> None:
        gap = self.rng.expovariate(self.rate)
        cycle = self.burst_on + self.burst_off
        if self.burst_off > 0:
            # Position of the *next* arrival inside the on/off cycle; if it
            # lands in an off phase, defer it to the start of the next on
            # phase (arrivals are suppressed, not queued, while off).
            at = (self.now - self._phase_start) + gap
            offset = at % cycle
            if offset > self.burst_on:
                gap += cycle - offset
        self._set_timer(gap, self._fire)


class VariableRateOpenLoopDriver(OpenLoopDriver):
    """Open-loop arrivals whose instantaneous rate varies over time.

    Subclasses define :meth:`rate_at` (the rate at ``elapsed`` seconds
    since :meth:`start`) and :meth:`next_change` (seconds until the rate
    next changes, or ``None``).  Gaps are sampled from the current rate;
    when a sampled gap crosses a rate-change boundary, the draw restarts
    *at* the boundary with the new rate — by memorylessness this makes the
    arrival process exact for piecewise-constant rate functions and a
    tight approximation for smoothly varying ones (given boundaries small
    against the modulation period).
    """

    def start(self) -> None:
        self._anchor = self.now
        self._schedule_next()

    def rate_at(self, elapsed: float) -> float:
        raise NotImplementedError

    def next_change(self, elapsed: float) -> Optional[float]:
        raise NotImplementedError

    def _schedule_next(self) -> None:
        elapsed = self.now - self._anchor
        rate = max(self.rate_at(elapsed), 1e-9)
        gap = self.rng.expovariate(rate)
        boundary = self.next_change(elapsed)
        if boundary is not None and gap > boundary > 0:
            self._set_timer(boundary, self._schedule_next)
            return
        self._set_timer(gap, self._fire)


class FlashCrowdDriver(VariableRateOpenLoopDriver):
    """A Poisson base rate with one bounded spike.

    Arrivals run at ``rate`` except during the window ``[flash_at,
    flash_at + flash_width)`` (relative to :meth:`start`), where the rate
    steps to ``rate * flash_factor``.  Drivers started together spike
    together — the convoy case that stresses the root group's pipeline
    and, with autoscaling, triggers a scale-up.
    """

    def __init__(self, *args, flash_at: float = 1.0, flash_factor: float = 8.0,
                 flash_width: float = 0.5, **kwargs) -> None:
        if flash_factor < 1.0:
            raise ValueError("flash_factor must be >= 1")
        if flash_width <= 0:
            raise ValueError("flash_width must be positive")
        if flash_at < 0:
            raise ValueError("flash_at must be non-negative")
        super().__init__(*args, **kwargs)
        self.flash_at = flash_at
        self.flash_factor = flash_factor
        self.flash_width = flash_width

    def rate_at(self, elapsed: float) -> float:
        if self.flash_at <= elapsed < self.flash_at + self.flash_width:
            return self.rate * self.flash_factor
        return self.rate

    def next_change(self, elapsed: float) -> Optional[float]:
        if elapsed < self.flash_at:
            return self.flash_at - elapsed
        if elapsed < self.flash_at + self.flash_width:
            return self.flash_at + self.flash_width - elapsed
        return None


class DiurnalDriver(VariableRateOpenLoopDriver):
    """A sinusoidally modulated Poisson rate (day/night load shift).

    The instantaneous rate swings between ``rate * (1 - amplitude)`` and
    ``rate * (1 + amplitude)`` with the given period.  The sampling
    boundary is ``period / 16``, small enough that the piecewise-constant
    approximation tracks the sinusoid closely.
    """

    def __init__(self, *args, period: float = 2.0, amplitude: float = 0.8,
                 **kwargs) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        if not 0.0 <= amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        super().__init__(*args, **kwargs)
        self.period = period
        self.amplitude = amplitude

    def rate_at(self, elapsed: float) -> float:
        phase = 2.0 * math.pi * elapsed / self.period
        return self.rate * (1.0 + self.amplitude * math.sin(phase))

    def next_change(self, elapsed: float) -> Optional[float]:
        return self.period / 16.0
