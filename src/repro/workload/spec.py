"""Destination distributions (the workloads of §V).

A *destination sampler* is a callable ``rng -> Destination``.  The samplers
here reproduce the paper's workloads:

* ``local_uniform`` — local messages, destination group chosen uniformly
  (the Fig. 4(a)/5(a) workload);
* ``uniform_pairs`` — global messages to a uniformly random pair of groups
  (the *uniform workload* of Table II, Fig. 3/4(b)/5(b));
* ``skewed_pairs`` — global messages to {g1,g2} or {g3,g4} only (the
  *skewed workload* of Table II);
* ``mixed_ratio`` — local and global in a given proportion (the 10:1 mixed
  workload of Fig. 6/9/10).

The module also exposes the Table II demand matrices ``F(d)`` used by the
overlay-tree optimizer.
"""

from __future__ import annotations

import itertools
import random
from typing import Callable, Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro.errors import WorkloadError
from repro.types import Destination, destination

DestinationSampler = Callable[[random.Random], Destination]


def fixed_destination(*groups: str) -> DestinationSampler:
    """Always the same destination set."""
    dst = destination(*groups)

    def sample(rng: random.Random) -> Destination:
        return dst

    return sample


def local_uniform(targets: Sequence[str]) -> DestinationSampler:
    """Local messages: one target group, uniformly at random."""
    if not targets:
        raise WorkloadError("need at least one target group")
    choices = [destination(t) for t in targets]

    def sample(rng: random.Random) -> Destination:
        return rng.choice(choices)

    return sample


def uniform_pairs(targets: Sequence[str]) -> DestinationSampler:
    """Global messages to two groups, all pairs equally likely (Table II)."""
    if len(targets) < 2:
        raise WorkloadError("need at least two target groups for pairs")
    pairs = [destination(a, b) for a, b in itertools.combinations(sorted(targets), 2)]

    def sample(rng: random.Random) -> Destination:
        return rng.choice(pairs)

    return sample


def skewed_pairs(pairs: Iterable[Tuple[str, str]] = (("g1", "g2"), ("g3", "g4"))
                 ) -> DestinationSampler:
    """Global messages restricted to the given pairs (Table II skewed)."""
    choices = [destination(a, b) for a, b in pairs]
    if not choices:
        raise WorkloadError("need at least one pair")

    def sample(rng: random.Random) -> Destination:
        return rng.choice(choices)

    return sample


def mixed_ratio(
    local: DestinationSampler,
    global_: DestinationSampler,
    local_parts: int = 10,
    global_parts: int = 1,
) -> DestinationSampler:
    """Mix local and global messages in ``local_parts : global_parts``.

    The paper's mixed workload uses 10:1 (§V-G, §V-I).
    """
    if local_parts < 0 or global_parts < 0 or local_parts + global_parts == 0:
        raise WorkloadError("ratio parts must be non-negative and not both zero")
    global_probability = global_parts / (local_parts + global_parts)

    def sample(rng: random.Random) -> Destination:
        if rng.random() < global_probability:
            return global_(rng)
        return local(rng)

    return sample


def zipfian_local(targets: Sequence[str], s: float = 1.0) -> DestinationSampler:
    """Local messages with Zipf-skewed shard popularity.

    §V-A2 mentions workloads "with and without locality (i.e., skewed
    access)"; this sampler realizes the skew: shard ``i`` (0-based, in the
    given order) is chosen with probability proportional to ``1/(i+1)^s``.
    ``s = 0`` degenerates to uniform.
    """
    if not targets:
        raise WorkloadError("need at least one target group")
    if s < 0:
        raise WorkloadError("zipf exponent must be non-negative")
    weights = [1.0 / ((index + 1) ** s) for index in range(len(targets))]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        cumulative.append(acc)
    choices = [destination(t) for t in targets]

    def sample(rng: random.Random) -> Destination:
        point = rng.random()
        for index, bound in enumerate(cumulative):
            if point <= bound:
                return choices[index]
        return choices[-1]

    return sample


# -- Table II demand matrices (inputs to the optimizer) -----------------------


def table2_uniform_demand(
    targets: Sequence[str] = ("g1", "g2", "g3", "g4"),
    rate: float = 1200.0,
) -> Dict[FrozenSet[str], float]:
    """``D_u``: every pair of groups at ``F_u(d) = 1200`` msgs/s."""
    return {
        destination(a, b): rate
        for a, b in itertools.combinations(sorted(targets), 2)
    }


def table2_skewed_demand(
    pairs: Iterable[Tuple[str, str]] = (("g1", "g2"), ("g3", "g4")),
    rate: float = 9000.0,
) -> Dict[FrozenSet[str], float]:
    """``D_s``: only {g1,g2} and {g3,g4}, each at ``F_s(d) = 9000`` msgs/s."""
    return {destination(a, b): rate for a, b in pairs}
