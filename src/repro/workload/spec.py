"""Destination and key distributions (the workloads of §V and beyond).

A *destination sampler* is a callable ``rng -> Destination``.  The samplers
here reproduce the paper's workloads:

* ``local_uniform`` — local messages, destination group chosen uniformly
  (the Fig. 4(a)/5(a) workload);
* ``uniform_pairs`` — global messages to a uniformly random pair of groups
  (the *uniform workload* of Table II, Fig. 3/4(b)/5(b));
* ``skewed_pairs`` — global messages to {g1,g2} or {g3,g4} only (the
  *skewed workload* of Table II);
* ``mixed_ratio`` — local and global in a given proportion (the 10:1 mixed
  workload of Fig. 6/9/10);

and the skewed/shifting distributions the scale suite adds on top
(docs/SCENARIOS.md):

* ``zipfian_local`` / ``zipfian_pairs`` — Zipf-skewed group popularity;
* ``hotspot_migration`` — one hot group holds most of the probability
  mass and the hot spot migrates over (virtual) time.

A *key sampler* is a callable ``rng -> str`` over a fixed key space —
``uniform_keys`` / ``zipfian_keys`` / ``hotspot_keys`` feed the sharded-KV
workloads of :mod:`repro.apps.sharded_kv`.

The module also exposes the Table II demand matrices ``F(d)`` used by the
overlay-tree optimizer.
"""

from __future__ import annotations

import itertools
import random
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.errors import WorkloadError
from repro.types import Destination, destination

DestinationSampler = Callable[[random.Random], Destination]
KeySampler = Callable[[random.Random], str]


def _zipf_cumulative(count: int, s: float) -> List[float]:
    """Cumulative Zipf(s) distribution over ``count`` ranks."""
    if count < 1:
        raise WorkloadError("need at least one element")
    if s < 0:
        raise WorkloadError("zipf exponent must be non-negative")
    weights = [1.0 / ((index + 1) ** s) for index in range(count)]
    total = sum(weights)
    cumulative: List[float] = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        cumulative.append(acc)
    return cumulative


def _zipf_index(cumulative: Sequence[float], rng: random.Random) -> int:
    point = rng.random()
    for index, bound in enumerate(cumulative):
        if point <= bound:
            return index
    return len(cumulative) - 1


def fixed_destination(*groups: str) -> DestinationSampler:
    """Always the same destination set."""
    dst = destination(*groups)

    def sample(rng: random.Random) -> Destination:
        return dst

    return sample


def local_uniform(targets: Sequence[str]) -> DestinationSampler:
    """Local messages: one target group, uniformly at random."""
    if not targets:
        raise WorkloadError("need at least one target group")
    choices = [destination(t) for t in targets]

    def sample(rng: random.Random) -> Destination:
        return rng.choice(choices)

    return sample


def uniform_pairs(targets: Sequence[str]) -> DestinationSampler:
    """Global messages to two groups, all pairs equally likely (Table II)."""
    if len(targets) < 2:
        raise WorkloadError("need at least two target groups for pairs")
    pairs = [destination(a, b) for a, b in itertools.combinations(sorted(targets), 2)]

    def sample(rng: random.Random) -> Destination:
        return rng.choice(pairs)

    return sample


def skewed_pairs(pairs: Iterable[Tuple[str, str]] = (("g1", "g2"), ("g3", "g4"))
                 ) -> DestinationSampler:
    """Global messages restricted to the given pairs (Table II skewed)."""
    choices = [destination(a, b) for a, b in pairs]
    if not choices:
        raise WorkloadError("need at least one pair")

    def sample(rng: random.Random) -> Destination:
        return rng.choice(choices)

    return sample


def mixed_ratio(
    local: DestinationSampler,
    global_: DestinationSampler,
    local_parts: int = 10,
    global_parts: int = 1,
) -> DestinationSampler:
    """Mix local and global messages in ``local_parts : global_parts``.

    The paper's mixed workload uses 10:1 (§V-G, §V-I).
    """
    if local_parts < 0 or global_parts < 0 or local_parts + global_parts == 0:
        raise WorkloadError("ratio parts must be non-negative and not both zero")
    global_probability = global_parts / (local_parts + global_parts)

    def sample(rng: random.Random) -> Destination:
        if rng.random() < global_probability:
            return global_(rng)
        return local(rng)

    return sample


def zipfian_local(targets: Sequence[str], s: float = 1.0) -> DestinationSampler:
    """Local messages with Zipf-skewed shard popularity.

    §V-A2 mentions workloads "with and without locality (i.e., skewed
    access)"; this sampler realizes the skew: shard ``i`` (0-based, in the
    given order) is chosen with probability proportional to ``1/(i+1)^s``.
    ``s = 0`` degenerates to uniform.
    """
    if not targets:
        raise WorkloadError("need at least one target group")
    cumulative = _zipf_cumulative(len(targets), s)
    choices = [destination(t) for t in targets]

    def sample(rng: random.Random) -> Destination:
        return choices[_zipf_index(cumulative, rng)]

    return sample


def zipfian_pairs(targets: Sequence[str], s: float = 1.0) -> DestinationSampler:
    """Global messages to a Zipf-skewed pair of groups.

    Both members of the pair are drawn from the same Zipf(s) marginal over
    the given target order (re-drawing until distinct), so popular shards
    co-occur in cross-group messages the way skewed real workloads make
    them — the distribution FlexCast-style adaptive trees feed on.
    ``s = 0`` degenerates to uniform pairs.
    """
    if len(targets) < 2:
        raise WorkloadError("need at least two target groups for pairs")
    cumulative = _zipf_cumulative(len(targets), s)
    names = list(targets)

    def sample(rng: random.Random) -> Destination:
        first = _zipf_index(cumulative, rng)
        second = first
        while second == first:
            second = _zipf_index(cumulative, rng)
        return destination(names[first], names[second])

    return sample


def hotspot_migration(
    targets: Sequence[str],
    hot_weight: float = 0.8,
    period: float = 1.0,
    clock: Optional[Callable[[], float]] = None,
) -> DestinationSampler:
    """Local messages with a migrating hot group (flash-crowd shape).

    At any instant one target is *hot* and receives ``hot_weight`` of the
    probability mass; the rest is spread uniformly over the other targets.
    The hot spot advances to the next target every ``period``:

    * with a ``clock`` (a ``() -> float`` of virtual seconds), migration
      follows time — drivers at any rate see the same dwell per group;
    * without one, migration counts samples — every ``ceil(period)``
      draws — keeping the sampler deterministic in unit tests.
    """
    if not targets:
        raise WorkloadError("need at least one target group")
    if not 0.0 < hot_weight <= 1.0:
        raise WorkloadError("hot_weight must be in (0, 1]")
    if period <= 0:
        raise WorkloadError("period must be positive")
    choices = [destination(t) for t in targets]
    if len(choices) == 1:
        return fixed_destination(*targets)
    sample_period = max(1, int(period))
    drawn = 0

    def sample(rng: random.Random) -> Destination:
        nonlocal drawn
        if clock is not None:
            hot = int(clock() / period) % len(choices)
        else:
            hot = (drawn // sample_period) % len(choices)
            drawn += 1
        if rng.random() < hot_weight:
            return choices[hot]
        cold = rng.randrange(len(choices) - 1)
        return choices[cold if cold < hot else cold + 1]

    return sample


def hotspot_pairs(
    targets: Sequence[str],
    hot_weight: float = 0.9,
    period: float = 1.0,
    s: float = 1.0,
    clock: Optional[Callable[[], float]] = None,
) -> DestinationSampler:
    """Global hot *pairs* whose pairing migrates — the adaptive-tree stress.

    Targets split into a front and a back half.  With probability
    ``hot_weight`` the destination is the pair ``(front[i], back[(i +
    epoch) % |back|])`` with ``i`` drawn Zipf(``s``)-ranked over the front
    half; otherwise it is a uniform local single.  The epoch advances
    every ``period`` (virtual seconds under a ``clock``, else every
    ``ceil(period)`` draws), so *which* groups co-occur rotates over time:
    a tree adapted to one epoch's pairing is cross-branch again in the
    next — exactly the shifting-skew workload FlexCast-style online
    re-planning is for (docs/TREES.md).

    Under the canonical ``balanced(fanout = |targets| / 2)`` tree the two
    halves sit in different branches, so every hot pair costs the full
    3-level path until the planner co-locates that epoch's pairing.
    """
    if len(targets) < 2:
        raise WorkloadError("need at least two target groups for pairs")
    if not 0.0 < hot_weight <= 1.0:
        raise WorkloadError("hot_weight must be in (0, 1]")
    if period <= 0:
        raise WorkloadError("period must be positive")
    names = list(targets)
    half = len(names) // 2
    front, back = names[:half], names[half:]
    cumulative = _zipf_cumulative(len(front), s)
    singles = [destination(t) for t in names]
    sample_period = max(1, int(period))
    drawn = 0

    def sample(rng: random.Random) -> Destination:
        nonlocal drawn
        if clock is not None:
            epoch = int(clock() / period)
        else:
            epoch = drawn // sample_period
            drawn += 1
        if rng.random() < hot_weight:
            rank = _zipf_index(cumulative, rng)
            return destination(front[rank], back[(rank + epoch) % len(back)])
        return singles[rng.randrange(len(singles))]

    return sample


# -- key distributions (sharded-KV workloads) ---------------------------------


def key_space(count: int, prefix: str = "key") -> Tuple[str, ...]:
    """The fixed key universe ``{prefix}0 .. {prefix}{count-1}``."""
    if count < 1:
        raise WorkloadError("need at least one key")
    return tuple(f"{prefix}{i}" for i in range(count))


def uniform_keys(count: int, prefix: str = "key") -> KeySampler:
    """Every key equally popular."""
    keys = key_space(count, prefix)

    def sample(rng: random.Random) -> str:
        return keys[rng.randrange(len(keys))]

    return sample


def zipfian_keys(count: int, s: float = 1.0, prefix: str = "key") -> KeySampler:
    """Zipf-skewed key popularity (key ``{prefix}0`` is the most popular)."""
    keys = key_space(count, prefix)
    cumulative = _zipf_cumulative(len(keys), s)

    def sample(rng: random.Random) -> str:
        return keys[_zipf_index(cumulative, rng)]

    return sample


def hotspot_keys(
    count: int,
    hot_fraction: float = 0.1,
    hot_weight: float = 0.9,
    prefix: str = "key",
) -> KeySampler:
    """A small hot set absorbs most accesses (90/10-style skew).

    ``hot_fraction`` of the key space (at least one key) receives
    ``hot_weight`` of the draws; the cold remainder shares the rest.
    """
    keys = key_space(count, prefix)
    if not 0.0 < hot_fraction <= 1.0:
        raise WorkloadError("hot_fraction must be in (0, 1]")
    if not 0.0 < hot_weight <= 1.0:
        raise WorkloadError("hot_weight must be in (0, 1]")
    hot_count = max(1, int(len(keys) * hot_fraction))
    hot, cold = keys[:hot_count], keys[hot_count:]
    if not cold:
        return uniform_keys(count, prefix)

    def sample(rng: random.Random) -> str:
        pool = hot if rng.random() < hot_weight else cold
        return pool[rng.randrange(len(pool))]

    return sample


# -- Table II demand matrices (inputs to the optimizer) -----------------------


def table2_uniform_demand(
    targets: Sequence[str] = ("g1", "g2", "g3", "g4"),
    rate: float = 1200.0,
) -> Dict[FrozenSet[str], float]:
    """``D_u``: every pair of groups at ``F_u(d) = 1200`` msgs/s."""
    return {
        destination(a, b): rate
        for a, b in itertools.combinations(sorted(targets), 2)
    }


def table2_skewed_demand(
    pairs: Iterable[Tuple[str, str]] = (("g1", "g2"), ("g3", "g4")),
    rate: float = 9000.0,
) -> Dict[FrozenSet[str], float]:
    """``D_s``: only {g1,g2} and {g3,g4}, each at ``F_s(d) = 9000`` msgs/s."""
    return {destination(a, b): rate for a, b in pairs}
