"""Workload generation: destination distributions and client drivers."""

from repro.workload.spec import (
    DestinationSampler,
    fixed_destination,
    local_uniform,
    mixed_ratio,
    skewed_pairs,
    uniform_pairs,
    zipfian_local,
    table2_skewed_demand,
    table2_uniform_demand,
)
from repro.workload.clients import (
    BurstOpenLoopDriver,
    ClosedLoopDriver,
    DiurnalDriver,
    FlashCrowdDriver,
    OpenLoopDriver,
    VariableRateOpenLoopDriver,
)

__all__ = [
    "DestinationSampler",
    "fixed_destination",
    "local_uniform",
    "uniform_pairs",
    "zipfian_local",
    "skewed_pairs",
    "mixed_ratio",
    "table2_uniform_demand",
    "table2_skewed_demand",
    "ClosedLoopDriver",
    "OpenLoopDriver",
    "BurstOpenLoopDriver",
    "VariableRateOpenLoopDriver",
    "FlashCrowdDriver",
    "DiurnalDriver",
]
