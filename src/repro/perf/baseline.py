"""BENCH.json baselines: schema, persistence, regression comparison.

A baseline file captures one full run of the benchmark matrix:

.. code-block:: json

    {
      "schema": 1,
      "rev": "abc1234",
      "scale": 10.0,
      "optimised": true,
      "cells": {
        "mixed_two_level": {
          "throughput": 812.4,
          "completed": 3250,
          "latency_ms": {"mean": 21.0, "median": 19.5,
                         "p95": 38.2, "p99": 55.1},
          "wall_seconds": 4.8
        }
      }
    }

``schema`` guards against comparing incompatible formats; ``scale`` is the
:data:`~repro.runtime.environments.BENCH_SCALE` cost multiplier the cells
ran under (comparing runs at different scales is meaningless and refused).
``optimised`` records whether adaptive batching was enabled — the committed
``BENCH_seed.json`` is generated with it *off*, so the default optimised
run must beat it.

Comparison is cell-by-cell over the intersection of cell names: throughput
may not drop by more than ``tolerance`` (default 10%), and p95 latency may
not rise by more than ``tolerance``.  Cells present on only one side are
reported but never fail the comparison (the matrix is allowed to grow).
``wall_seconds`` is informational only — it measures the host, not the
protocol.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError

#: bump when the JSON layout changes incompatibly
BENCH_SCHEMA_VERSION = 1

#: latency percentiles serialized per cell, in milliseconds
LATENCY_KEYS = ("mean", "median", "p95", "p99")


@dataclass(frozen=True)
class CellResult:
    """Measurements of one benchmark matrix cell."""

    name: str
    throughput: float
    completed: int
    latency_ms: Dict[str, float]
    wall_seconds: float
    #: high-water mark of retained executed batches across all replicas of
    #: the cell's deployment (memory-bound metric; 0 in pre-checkpoint
    #: baselines, which is why it is informational and never compared)
    max_retained: int = 0
    #: mean overlay hops per delivered global message over the measurement
    #: window (0 when the cell ran without the traffic collector); the
    #: adaptive-tree gate in :func:`compare` reads this
    mean_hops: float = 0.0
    #: ordered tree switches the adaptive planner committed during the cell
    tree_switches: int = 0

    def to_json(self) -> Dict:
        doc = {
            "throughput": round(self.throughput, 3),
            "completed": self.completed,
            "latency_ms": {
                key: round(self.latency_ms.get(key, 0.0), 4)
                for key in LATENCY_KEYS
            },
            "wall_seconds": round(self.wall_seconds, 3),
            "max_retained": self.max_retained,
        }
        # Adaptive-tree metrics appear only on cells that collected them,
        # keeping pre-adaptive cells byte-identical to older baselines.
        if self.mean_hops:
            doc["mean_hops"] = round(self.mean_hops, 4)
        if self.tree_switches:
            doc["tree_switches"] = self.tree_switches
        return doc

    @classmethod
    def from_json(cls, name: str, raw: Dict) -> "CellResult":
        return cls(
            name=name,
            throughput=float(raw["throughput"]),
            completed=int(raw["completed"]),
            latency_ms={key: float(value)
                        for key, value in raw["latency_ms"].items()},
            wall_seconds=float(raw.get("wall_seconds", 0.0)),
            max_retained=int(raw.get("max_retained", 0)),
            mean_hops=float(raw.get("mean_hops", 0.0)),
            tree_switches=int(raw.get("tree_switches", 0)),
        )


@dataclass(frozen=True)
class BenchReport:
    """One full run of the benchmark matrix."""

    rev: str
    scale: float
    optimised: bool
    cells: Dict[str, CellResult]
    schema: int = BENCH_SCHEMA_VERSION

    def to_json(self) -> Dict:
        return {
            "schema": self.schema,
            "rev": self.rev,
            "scale": self.scale,
            "optimised": self.optimised,
            "cells": {name: cell.to_json()
                      for name, cell in sorted(self.cells.items())},
        }

    @classmethod
    def from_json(cls, raw: Dict) -> "BenchReport":
        schema = int(raw.get("schema", -1))
        if schema != BENCH_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported BENCH schema {schema} "
                f"(this build reads schema {BENCH_SCHEMA_VERSION})"
            )
        return cls(
            rev=str(raw.get("rev", "unknown")),
            scale=float(raw.get("scale", 0.0)),
            optimised=bool(raw.get("optimised", True)),
            cells={
                name: CellResult.from_json(name, cell)
                for name, cell in raw.get("cells", {}).items()
            },
            schema=schema,
        )


def save_report(path: str, report: BenchReport) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report.to_json(), handle, indent=2, sort_keys=False)
        handle.write("\n")


def load_report(path: str) -> BenchReport:
    with open(path, "r", encoding="utf-8") as handle:
        return BenchReport.from_json(json.load(handle))


# -- comparison ---------------------------------------------------------------


@dataclass(frozen=True)
class Regression:
    """One metric of one cell beyond tolerance."""

    cell: str
    metric: str  # "throughput" | "p95"
    baseline: float
    current: float

    @property
    def change(self) -> float:
        """Signed relative change (negative = worse throughput / better p95)."""
        if self.baseline == 0:
            return 0.0
        return (self.current - self.baseline) / self.baseline


@dataclass(frozen=True)
class Comparison:
    """Outcome of comparing a run against a baseline."""

    baseline_rev: str
    current_rev: str
    tolerance: float
    regressions: Tuple[Regression, ...]
    improvements: Tuple[Regression, ...]
    missing_cells: Tuple[str, ...]  # in baseline, absent from current
    new_cells: Tuple[str, ...]      # in current, absent from baseline
    compared: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.regressions


def compare(
    current: BenchReport,
    baseline: BenchReport,
    tolerance: float = 0.10,
    speedup_gates: Optional[Dict[str, Tuple[str, float]]] = None,
    skip_latency: Optional[Iterable[str]] = None,
    adapt_gates: Optional[Dict[str, Tuple[str, float]]] = None,
) -> Comparison:
    """Detect per-cell regressions of ``current`` against ``baseline``.

    ``speedup_gates`` maps a current-cell name to ``(baseline_cell,
    min_speedup)``: the named cell must reach at least ``min_speedup``
    times the *baseline cell's* throughput, and its p95 latency may exceed
    the baseline cell's by at most ``tolerance``.  This is how pipelined
    matrix cells are held to the docs/PIPELINE.md acceptance bar against
    their depth-1 baselines (cross-name, so the intersection rule above
    cannot see them).  When the baseline report does not carry the
    ``baseline_cell`` at all, the gate falls back to the *current*
    report's measurement of it — the wire-codec rt cells gate binary
    against json from the same run (committed sim baselines carry no
    wall-clock cells).  Gates whose cells were not measured on either
    side are skipped — a ``--cells`` subset run should not fail on what
    it did not measure.

    ``adapt_gates`` maps an adaptive-tree cell to ``(control_cell,
    min_gain)``: the adaptive cell's p50 latency *and* mean overlay hop
    count must both improve at least ``min_gain``-fold over the static
    control cell (lower is better on both axes — the inverse direction of
    a throughput gate).  Lookup follows the speedup-gate rule: control
    from the baseline report when present, else from the same run (the
    control cells are measured alongside the adaptive ones).  Gates whose
    cells were not measured on either side are skipped.

    ``skip_latency`` names cells whose per-cell p95 check is skipped:
    cells deliberately driven past saturation (see
    :func:`repro.perf.runner.saturated_cells`) measure backlog depth in
    their open-loop latency, so p95 noise between runs carries no signal.
    Their throughput check and any speedup gate still apply.

    Raises :class:`~repro.errors.ConfigurationError` when the two reports
    ran at different cost scales — their absolute numbers are incomparable.
    """
    if baseline.scale and current.scale and baseline.scale != current.scale:
        raise ConfigurationError(
            f"cost scale mismatch: baseline ran at ×{baseline.scale}, "
            f"current at ×{current.scale}"
        )
    shared = sorted(set(current.cells) & set(baseline.cells))
    no_latency = frozenset(skip_latency or ())
    regressions: List[Regression] = []
    improvements: List[Regression] = []
    for name in shared:
        cur, base = current.cells[name], baseline.cells[name]
        tput = Regression(cell=name, metric="throughput",
                          baseline=base.throughput, current=cur.throughput)
        if base.throughput > 0 and tput.change < -tolerance:
            regressions.append(tput)
        elif base.throughput > 0 and tput.change > tolerance:
            improvements.append(tput)
        if name in no_latency:
            continue
        p95 = Regression(cell=name, metric="p95",
                         baseline=base.latency_ms.get("p95", 0.0),
                         current=cur.latency_ms.get("p95", 0.0))
        if p95.baseline > 0 and p95.change > tolerance:
            regressions.append(p95)
        elif p95.baseline > 0 and p95.change < -tolerance:
            improvements.append(p95)
    gated: List[str] = []
    for name, (base_name, min_speedup) in sorted((speedup_gates or {}).items()):
        cur = current.cells.get(name)
        base = baseline.cells.get(base_name)
        if base is None:
            base = current.cells.get(base_name)
        if cur is None or base is None or base.throughput <= 0:
            continue
        gated.append(f"{name} vs {base_name}")
        tput = Regression(cell=f"{name} vs {base_name}",
                          metric=f"throughput(x{min_speedup:g} gate)",
                          baseline=base.throughput * min_speedup,
                          current=cur.throughput)
        if cur.throughput < base.throughput * min_speedup:
            regressions.append(tput)
        else:
            improvements.append(tput)
        base_p95 = base.latency_ms.get("p95", 0.0)
        p95 = Regression(cell=f"{name} vs {base_name}", metric="p95",
                         baseline=base_p95,
                         current=cur.latency_ms.get("p95", 0.0))
        if p95.baseline > 0 and p95.change > tolerance:
            regressions.append(p95)
    for name, (base_name, min_gain) in sorted((adapt_gates or {}).items()):
        cur = current.cells.get(name)
        base = baseline.cells.get(base_name)
        if base is None:
            base = current.cells.get(base_name)
        if cur is None or base is None:
            continue
        gated.append(f"{name} vs {base_name}")
        # Lower-is-better gates: cur must be <= base / min_gain on both
        # p50 latency and mean hop count.
        checks = (
            (f"p50(x{min_gain:g} gate)",
             base.latency_ms.get("median", 0.0),
             cur.latency_ms.get("median", 0.0)),
            (f"mean_hops(x{min_gain:g} gate)",
             base.mean_hops, cur.mean_hops),
        )
        for metric, base_value, cur_value in checks:
            if base_value <= 0:
                continue
            entry = Regression(cell=f"{name} vs {base_name}", metric=metric,
                               baseline=base_value / min_gain,
                               current=cur_value)
            if cur_value <= 0 or cur_value * min_gain > base_value:
                regressions.append(entry)
            else:
                improvements.append(entry)
    return Comparison(
        baseline_rev=baseline.rev,
        current_rev=current.rev,
        tolerance=tolerance,
        regressions=tuple(regressions),
        improvements=tuple(improvements),
        missing_cells=tuple(sorted(set(baseline.cells) - set(current.cells))),
        new_cells=tuple(sorted(set(current.cells) - set(baseline.cells))),
        compared=tuple(shared) + tuple(gated),
    )
