"""Performance-regression harness.

``python -m repro bench`` drives a fixed matrix of simulated benchmark
scenarios (:mod:`repro.perf.runner`), writes the measurements to a
schema-versioned ``BENCH_<rev>.json`` (:mod:`repro.perf.baseline`) and —
given ``--compare`` — fails the run when any matrix cell regressed beyond
tolerance against a committed baseline (``BENCH_seed.json`` anchors the
trajectory).  :mod:`repro.perf.report` renders both the measurement table
and the comparison verdict.

All cells run on the deterministic simulation backend, so throughput and
latency are functions of the protocol and the CPU cost model alone —
bit-identical per seed, immune to host noise.  Wall-clock seconds per cell
are recorded too (they track the Python hot path the crypto/codec caches
optimise) but never gate a comparison.
"""

from repro.perf.baseline import (
    BENCH_SCHEMA_VERSION,
    BenchReport,
    CellResult,
    Comparison,
    Regression,
    compare,
    load_report,
    save_report,
)
from repro.perf.runner import (
    ADAPT_CONTROL_CELL,
    ADAPT_GAIN,
    ADAPT_SMOKE_CELL,
    BENCH_MATRIX,
    BenchCell,
    MIXED_CELL,
    PIPELINE_SPEEDUP,
    QUICK_CELL,
    adapt_gates,
    run_cell,
    run_matrix,
    saturated_cells,
    speedup_gates,
)
from repro.perf.report import format_comparison, format_report
from repro.perf.rtbench import (
    RT_MATRIX,
    RT_WIRE_SPEEDUP,
    RtCell,
    run_rt_cell,
)

__all__ = [
    "ADAPT_CONTROL_CELL",
    "ADAPT_GAIN",
    "ADAPT_SMOKE_CELL",
    "adapt_gates",
    "BENCH_SCHEMA_VERSION",
    "BENCH_MATRIX",
    "BenchCell",
    "RT_MATRIX",
    "RT_WIRE_SPEEDUP",
    "RtCell",
    "run_rt_cell",
    "BenchReport",
    "CellResult",
    "Comparison",
    "MIXED_CELL",
    "PIPELINE_SPEEDUP",
    "QUICK_CELL",
    "Regression",
    "compare",
    "speedup_gates",
    "format_comparison",
    "format_report",
    "load_report",
    "run_cell",
    "run_matrix",
    "saturated_cells",
    "save_report",
]
