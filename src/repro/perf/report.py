"""Human-readable rendering of benchmark reports and comparisons."""

from __future__ import annotations

from typing import List

from repro.perf.baseline import BenchReport, CellResult, Comparison


def _cell_row(name: str, cell: CellResult) -> str:
    lat = cell.latency_ms
    return (
        f"{name:<20} tput={cell.throughput:>9.1f} m/s  "
        f"n={cell.completed:<6} "
        f"lat(med={lat.get('median', 0.0):7.2f}ms "
        f"p95={lat.get('p95', 0.0):7.2f}ms "
        f"p99={lat.get('p99', 0.0):7.2f}ms)  "
        f"wall={cell.wall_seconds:6.2f}s  "
        f"retained={cell.max_retained}"
        + (f"  hops={cell.mean_hops:.2f}" if cell.mean_hops else "")
        + (f"  switches={cell.tree_switches}" if cell.tree_switches else "")
    )


def format_report(report: BenchReport) -> str:
    """The measurement table for one matrix run."""
    mode = "optimised" if report.optimised else "seed mode (optimisations off)"
    lines = [
        f"bench rev={report.rev} scale=x{report.scale:g} [{mode}]",
    ]
    for name in sorted(report.cells):
        lines.append("  " + _cell_row(name, report.cells[name]))
    return "\n".join(lines)


def format_comparison(comparison: Comparison) -> str:
    """The regression verdict against a baseline."""
    lines: List[str] = [
        f"compare: {comparison.current_rev} vs baseline "
        f"{comparison.baseline_rev} "
        f"(tolerance {comparison.tolerance:.0%}, "
        f"{len(comparison.compared)} shared cell(s))",
    ]
    for item in comparison.regressions:
        lines.append(
            f"  REGRESSION {item.cell}.{item.metric}: "
            f"{item.baseline:.1f} -> {item.current:.1f} "
            f"({item.change:+.1%})"
        )
    for item in comparison.improvements:
        lines.append(
            f"  improved   {item.cell}.{item.metric}: "
            f"{item.baseline:.1f} -> {item.current:.1f} "
            f"({item.change:+.1%})"
        )
    if comparison.missing_cells:
        lines.append(
            "  note: baseline cells not in this run: "
            + ", ".join(comparison.missing_cells)
        )
    if comparison.new_cells:
        lines.append(
            "  note: new cells without baseline: "
            + ", ".join(comparison.new_cells)
        )
    lines.append("verdict: " + ("OK" if comparison.ok else "REGRESSED"))
    return "\n".join(lines)
