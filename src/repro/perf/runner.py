"""The benchmark matrix: fixed scenarios measured by ``repro bench``.

Each :class:`BenchCell` is a thin, named view over a
:class:`~repro.scenario.ScenarioSpec` — the cell axes (workload mix, tree
layout, batch configuration, pipeline depth, arrival process, application)
map onto the declarative scenario schema via :meth:`BenchCell.to_scenario`,
and :func:`run_cell` executes the spec through the one shared
:func:`~repro.scenario.build.run_scenario` path.  Same cell + same
``optimised`` flag ⇒ bit-identical measurements on any host (sim backend).

The classic cells sweep the paper's axes — workload mix (local / global /
10:1 mixed, §V), overlay-tree layout (2-level vs the Fig. 1(a) 3-level
tree), batching and consensus pipeline depth (docs/PIPELINE.md) — with the
benchmark cost model (:func:`repro.runtime.environments.bench_costs`).
The ``scale16_*`` cells are the ROADMAP's scale-out suite: 16 target
groups on a balanced tree, open-loop zipfian traffic and the sharded-KV
cross-shard mix (docs/SCENARIOS.md).  ``SCALE_EXTRA_CELLS`` holds the
larger/nondeterministic variants (64 groups, the rt best-effort cell)
reachable via ``repro bench --cells`` but excluded from the default matrix
and its regression baselines.

``optimised`` toggles the two hot-path optimisations as one unit: adaptive
batch sizing (:class:`repro.bcast.adaptive.AdaptiveBatcher`) changes the
simulated schedule, crypto/codec memoisation changes only wall-clock.  The
committed ``BENCH_seed.json`` is generated with ``optimised=False`` so the
default run demonstrates the gain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.tree import OverlayTree
from repro.crypto import cache as _crypto_cache
from repro.perf.baseline import BenchReport, CellResult
from repro.perf.rtbench import RT_MATRIX, RtCell, run_rt_cell
from repro.runtime.environments import BENCH_SCALE, bench_batch_delay
from repro.scenario import (
    ScenarioSpec,
    build_destination_sampler,
    run_scenario,
)
from repro.scenario.spec import (
    FaultSpec,
    ProtocolSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.workload import spec as workloads


@dataclass(frozen=True)
class BenchCell:
    """One point of the benchmark matrix."""

    name: str
    workload: str            # "local" | "global" | "mixed" | "zipfian" | "kv"
    tree: str                # "two_level" | "paper" | "balanced"
    clients: int
    #: balanced trees only: number of target groups and tree fanout
    groups: int = 2
    fanout: int = 8
    #: arrival process: "closed" (paper §IV) or "open" (Poisson at ``rate``)
    loop: str = "closed"
    rate: float = 100.0
    #: "none" or "sharded_kv" (the ``kv`` workload's cross-shard mix)
    app: str = "none"
    #: network geometry: ``default`` (uniform sim latency) or ``wan``
    #: (the paper's Table I EC2 inter-region latency matrix), with
    #: ``sites`` placing one replica per region (``wan_spread``)
    latency: str = "default"
    sites: str = "single"
    #: optional nemesis intensity — the cell measures *under faults*
    #: (e.g. ``"churn"`` rides membership swaps + a scale cycle along
    #: with the measurement window)
    intensity: Optional[str] = None
    backend: str = "sim"
    max_batch: int = 400
    batch_delay: float = bench_batch_delay()
    warmup: float = 1.0
    duration: float = 4.0
    seed: int = 11
    #: checkpointing is always on in the bench matrix so the comparison
    #: against BENCH_seed.json bounds its overhead (and ``max_retained``
    #: proves memory stays bounded under benchmark load)
    checkpoint_interval: int = 64
    #: consensus pipeline depth; the base cells stay at 1 so they remain
    #: comparable against pre-pipeline baselines (BENCH_seed.json), the
    #: ``*_pipe4`` cells measure the depth-4 gain
    max_in_flight: int = 1
    #: name of the baseline-report cell this cell must beat (pipelined
    #: cells gate on >=1.5x that cell's throughput at <=1.1x its p95);
    #: ``None`` compares same-name cells with the regression thresholds
    baseline: Optional[str] = None
    #: throughput multiple required over ``baseline`` (``None`` = the
    #: default :data:`PIPELINE_SPEEDUP`; the read-tier cells demand more)
    speedup: Optional[float] = None
    #: key distribution of sharded-KV cells
    key_dist: str = "uniform"
    #: read-tier axis (schema 3, docs/READS.md): fraction of ops issued
    #: as reads and the mode serving them
    read_ratio: float = 0.0
    read_mode: str = "ordered"
    #: the cell is deliberately driven past its saturation point: open-loop
    #: latency then measures backlog depth at the end of the window, not
    #: service time, so ``compare`` must not treat its p95 as a regression
    #: signal (throughput still is one)
    saturated: bool = False
    #: adaptive-tree axis (schema 5, docs/TREES.md): ``observe`` runs the
    #: traffic collector only (hop counts without switching — the static
    #: control), ``on`` runs the full observe→decide→switch loop
    adaptive_tree: str = "off"
    adapt_interval: float = 1.0
    adapt_min_samples: int = 48
    adapt_hysteresis: float = 1.2
    adapt_cooldown: float = 2.0
    #: ``hotpairs`` workload shape: fraction of traffic on the hot
    #: cross-half pairs and the epoch length after which the pairing
    #: migrates (docs/SCENARIOS.md)
    hotspot_weight: float = 0.8
    hotspot_period: float = 5.0

    def to_scenario(self, optimised: bool = False) -> ScenarioSpec:
        """This cell as a runnable scenario spec."""
        groups = 4 if self.tree == "paper" else self.groups
        destinations = "local" if self.workload == "kv" else self.workload
        return ScenarioSpec(
            name=self.name,
            topology=TopologySpec(
                groups=groups, layout=self.tree, fanout=self.fanout,
                latency=self.latency, sites=self.sites),
            workload=WorkloadSpec(
                clients=self.clients, client_prefix="bench-c",
                loop=self.loop, rate=self.rate,
                destinations=destinations,
                warmup=self.warmup, duration=self.duration,
                key_dist=self.key_dist,
                read_ratio=self.read_ratio, read_mode=self.read_mode,
                hotspot_weight=self.hotspot_weight,
                hotspot_period=self.hotspot_period,
            ),
            protocol=ProtocolSpec(
                max_batch=self.max_batch,
                batch_delay=self.batch_delay,
                adaptive_batching=optimised,
                checkpoint_interval=self.checkpoint_interval,
                max_in_flight=self.max_in_flight,
                adaptive_tree=self.adaptive_tree,
                adapt_interval=self.adapt_interval,
                adapt_min_samples=self.adapt_min_samples,
                adapt_hysteresis=self.adapt_hysteresis,
                adapt_cooldown=self.adapt_cooldown,
                costs="bench",
            ),
            faults=(FaultSpec(intensity=self.intensity)
                    if self.intensity is not None else None),
            app=self.app,
            backend=self.backend,
            seed=self.seed,
        )

    def build_tree(self) -> OverlayTree:
        return self.to_scenario().build_tree()

    def build_sampler(self, targets: Sequence[str]) -> workloads.DestinationSampler:
        return build_destination_sampler(
            self.to_scenario().workload, targets)


#: the cell the acceptance criterion (≥15% adaptive-batching gain) gates on
MIXED_CELL = "mixed_two_level"

#: minimum throughput multiple a pipelined cell must reach over its
#: depth-1 baseline cell (docs/PIPELINE.md acceptance bar)
PIPELINE_SPEEDUP = 1.5

#: the cheapest cell — what CI's bench-smoke job runs (``--quick``)
QUICK_CELL = "local_unbatched"

#: the 16-group cell CI's scale-smoke job runs (``--cells scale16_zipf_open``)
SCALE_SMOKE_CELL = "scale16_zipf_open"

#: the WAN cell CI's bench-smoke job adds (Table I latency, wan_spread)
WAN_SMOKE_CELL = "wan_global_two_level"

#: the read-tier cell CI's bench-smoke job adds (ISSUE 8 acceptance bar:
#: the optimistic cell must reach READ_SPEEDUP x its ordered twin)
READ_SMOKE_CELL = "read90_zipf_open"
READ_SPEEDUP = 5.0

#: the adaptive-tree cell CI's adapt-smoke job runs, and the static
#: control it gates against (docs/TREES.md): the adaptive cell must show
#: >= ADAPT_GAIN x lower post-adaptation p50 latency AND mean hop count
ADAPT_SMOKE_CELL = "adapt_zipf_hotspot_migration"
ADAPT_CONTROL_CELL = "adapt_skew_static"
ADAPT_GAIN = 1.3

BENCH_MATRIX: List[BenchCell] = [
    # batch-config axis: no leader delay at all (latency-optimal baseline)
    BenchCell(name="local_unbatched", workload="local", tree="two_level",
              clients=12, batch_delay=0.0, duration=3.0),
    # workload axis on the 2-level tree, delay-batched
    BenchCell(name="local_two_level", workload="local", tree="two_level",
              clients=24),
    BenchCell(name="global_two_level", workload="global", tree="two_level",
              clients=24),
    BenchCell(name=MIXED_CELL, workload="mixed", tree="two_level",
              clients=32),
    # tree-layout axis: the paper's 3-level tree under the mixed workload
    BenchCell(name="mixed_paper_tree", workload="mixed", tree="paper",
              clients=32),
    # pipeline axis: the same scenarios with four in-flight instances and
    # higher offered load — pipelining raises the saturation point, so the
    # closed-loop client count rises with it; the gate in ``compare`` holds
    # these cells to >=1.5x the throughput of their depth-1 baseline cell
    # at no more than +10% p95 (docs/PIPELINE.md)
    BenchCell(name="global_two_level_pipe4", workload="global",
              tree="two_level", clients=48, max_in_flight=4,
              baseline="global_two_level"),
    BenchCell(name="mixed_paper_tree_pipe4", workload="mixed", tree="paper",
              clients=64, max_in_flight=4,
              baseline="mixed_paper_tree"),
    # scale axis: 16 target groups on a balanced fanout-4 tree — zipfian
    # open-loop traffic (skewed group popularity at a fixed offered rate)
    # and the sharded-KV cross-shard transaction mix; shorter windows keep
    # the default matrix's wall time in budget
    BenchCell(name=SCALE_SMOKE_CELL, workload="zipfian", tree="balanced",
              groups=16, fanout=4, clients=24, loop="open", rate=20.0,
              duration=3.0, max_in_flight=4),
    BenchCell(name="scale16_kv_mix", workload="kv", tree="balanced",
              groups=16, fanout=4, clients=24, app="sharded_kv",
              duration=3.0, max_in_flight=4),
    # WAN axis (the paper's §V EC2 campaign): the Table I inter-region
    # latency matrix with one replica per region — global and mixed
    # traffic on both tree layouts, plus the same WAN geometry measured
    # *under membership churn* (joins, leaves and a scale cycle riding
    # along with the measurement window)
    BenchCell(name=WAN_SMOKE_CELL, workload="global", tree="two_level",
              clients=24, latency="wan", sites="wan_spread", duration=3.0,
              max_in_flight=4),
    BenchCell(name="wan_mixed_paper_tree", workload="mixed", tree="paper",
              clients=32, latency="wan", sites="wan_spread", duration=3.0,
              max_in_flight=4),
    BenchCell(name="wan_mixed_churn", workload="mixed", tree="two_level",
              clients=24, latency="wan", sites="wan_spread", duration=8.0,
              max_in_flight=4, intensity="churn"),
    # read-tier axis (docs/READS.md): a 90/10 read-heavy zipfian KV
    # workload at a fixed offered rate, once with every read ordered
    # through the full multicast (the baseline) and once through the
    # optimistic unordered f+1 path — the gate holds the optimistic cell
    # to >=READ_SPEEDUP x the ordered cell's throughput, demonstrating
    # that reads scale past the consensus ceiling
    # the offered load (24 x 1600/s) sits far past the ordered path's
    # saturation point (~4.7k/s), where forcing reads through consensus
    # collapses under retransmissions while the optimistic path still
    # clears ~11.7k/s — the regime the read tier exists for
    BenchCell(name="read90_zipf_ordered", workload="kv", tree="two_level",
              clients=24, app="sharded_kv", key_dist="zipfian",
              loop="open", rate=1600.0, warmup=0.5, duration=1.5,
              read_ratio=0.9, read_mode="ordered", saturated=True),
    BenchCell(name=READ_SMOKE_CELL, workload="kv", tree="two_level",
              clients=24, app="sharded_kv", key_dist="zipfian",
              loop="open", rate=1600.0, warmup=0.5, duration=1.5,
              read_ratio=0.9, read_mode="optimistic", saturated=True,
              baseline="read90_zipf_ordered", speedup=READ_SPEEDUP),
    # adaptive-tree axis (docs/TREES.md): 8 target groups on a balanced
    # fanout-4 tree, 90% of traffic on zipf-ranked cross-half pairs whose
    # pairing migrates every hotspot_period seconds.  On the static tree
    # every hot pair costs 3 overlay hops (its lca is the root); the
    # online planner re-clusters the hot pairs under one auxiliary,
    # cutting them to 2.  The control cell runs the identical workload
    # with the collector in observe-only mode; the adaptive cell must
    # show an ADAPT_GAIN x drop in post-adaptation p50 latency and mean
    # hops against it (the ``adapt_gates`` check in compare()).  The long
    # warmup leaves the measurement window entirely post-switch.
    BenchCell(name=ADAPT_CONTROL_CELL, workload="hotpairs", tree="balanced",
              groups=8, fanout=4, clients=16, hotspot_weight=0.9,
              hotspot_period=4.0, warmup=6.0, duration=2.0,
              max_in_flight=4, adaptive_tree="observe"),
    BenchCell(name=ADAPT_SMOKE_CELL, workload="hotpairs", tree="balanced",
              groups=8, fanout=4, clients=16, hotspot_weight=0.9,
              hotspot_period=4.0, warmup=6.0, duration=2.0,
              max_in_flight=4, adaptive_tree="on",
              adapt_interval=0.5, adapt_min_samples=48,
              adapt_hysteresis=1.2, adapt_cooldown=1.0),
]

#: scale variants outside the default matrix (and its baselines): the
#: 64-group sim scenario is wall-clock-expensive, the rt cell is
#: best-effort by nature (wall-clock timing ⇒ not bit-reproducible, and
#: its duration is real seconds).  Run them via ``repro bench --cells``.
SCALE_EXTRA_CELLS: List[BenchCell] = [
    BenchCell(name="scale64_zipf_open", workload="zipfian", tree="balanced",
              groups=64, fanout=4, clients=48, loop="open", rate=10.0,
              duration=2.0, max_in_flight=4),
    BenchCell(name="scale16_rt_best_effort", workload="zipfian",
              tree="balanced", groups=16, fanout=4, clients=8, loop="open",
              rate=10.0, backend="rt", warmup=0.5, duration=1.5,
              max_in_flight=4),
]


def speedup_gates() -> Dict[str, tuple]:
    """Cross-cell gates for :func:`repro.perf.baseline.compare`.

    Every matrix cell that names a ``baseline`` cell must beat that cell's
    throughput by its ``speedup`` (default :data:`PIPELINE_SPEEDUP`).
    The rt wire-codec cells contribute their binary-vs-json gate
    (:data:`repro.perf.rtbench.RT_WIRE_SPEEDUP`).
    """
    return {
        cell.name: (cell.baseline, cell.speedup or PIPELINE_SPEEDUP)
        for cell in [*BENCH_MATRIX, *RT_MATRIX]
        if cell.baseline is not None
    }


def adapt_gates() -> Dict[str, tuple]:
    """Adaptive-tree gates for :func:`repro.perf.baseline.compare`.

    The adaptive cell must improve post-adaptation p50 latency and mean
    overlay hop count by at least :data:`ADAPT_GAIN` x over its static
    control cell (both lower-is-better; cross-name, resolved from the
    same run when the committed baseline predates the adaptive cells).
    """
    return {ADAPT_SMOKE_CELL: (ADAPT_CONTROL_CELL, ADAPT_GAIN)}


def saturated_cells() -> Tuple[str, ...]:
    """Cells whose open-loop p95 measures backlog, not service time.

    :func:`repro.perf.baseline.compare` skips the per-cell p95 regression
    check for these (their throughput check and any cross-cell speedup
    gate still apply).  The wall-clock rt cells are always included —
    they never carry meaningful latency stats.
    """
    return tuple(cell.name
                 for cell in [*BENCH_MATRIX, *SCALE_EXTRA_CELLS, *RT_MATRIX]
                 if cell.saturated)


def _cell_by_name(name: str):
    for cell in [*BENCH_MATRIX, *SCALE_EXTRA_CELLS, *RT_MATRIX]:
        if cell.name == name:
            return cell
    raise KeyError(f"no benchmark cell named {name!r}")


def run_cell(cell: BenchCell, optimised: bool = True) -> CellResult:
    """Run one matrix cell and collapse it to a :class:`CellResult`."""
    spec = cell.to_scenario(optimised=optimised)
    _crypto_cache.configure(optimised)
    _crypto_cache.clear_caches()
    try:
        result = run_scenario(spec)
    finally:
        _crypto_cache.configure(True)
    summary = result.latency.scaled(1000.0)  # seconds -> milliseconds
    return CellResult(
        name=cell.name,
        throughput=result.throughput,
        completed=result.latency.count,
        latency_ms={
            "mean": summary.mean,
            "median": summary.median,
            "p95": summary.p95,
            "p99": summary.p99,
        },
        wall_seconds=result.wall_seconds,
        max_retained=result.max_retained,
        mean_hops=result.mean_hops,
        tree_switches=result.tree_switches,
    )


def run_matrix(
    rev: str,
    optimised: bool = True,
    cells: Optional[Sequence[str]] = None,
    progress=None,
) -> BenchReport:
    """Run the matrix (or a named subset) into a :class:`BenchReport`.

    Args:
        rev: revision label stored in the report (e.g. a git short hash).
        optimised: enable adaptive batching + memoisation (see module doc).
        cells: cell names to run (may include ``SCALE_EXTRA_CELLS`` and
            the rt wire-codec cells); ``None`` runs the full default
            matrix — the sim cells plus ``RT_MATRIX``.
        progress: optional callable ``(cell_name, CellResult) -> None``
            invoked after each cell (the CLI prints rows as they finish).
    """
    selected = ([*BENCH_MATRIX, *RT_MATRIX] if cells is None
                else [_cell_by_name(name) for name in cells])
    results: Dict[str, CellResult] = {}
    for cell in selected:
        if isinstance(cell, RtCell):
            outcome = run_rt_cell(cell, optimised=optimised)
        else:
            outcome = run_cell(cell, optimised=optimised)
        results[cell.name] = outcome
        if progress is not None:
            progress(cell.name, outcome)
    return BenchReport(
        rev=rev,
        scale=BENCH_SCALE,
        optimised=optimised,
        cells=results,
    )
