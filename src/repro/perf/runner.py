"""The benchmark matrix: fixed scenarios measured by ``repro bench``.

Each :class:`BenchCell` pins one combination of the four axes the paper's
evaluation sweeps — workload mix (local / global / 10:1 mixed, §V),
overlay-tree layout (2-level vs the Fig. 1(a) 3-level tree), batch
configuration (unbatched vs delay-batched) and consensus pipeline depth
(``max_in_flight``, docs/PIPELINE.md) — onto the deterministic
simulation backend with the benchmark cost model
(:func:`repro.runtime.environments.bench_costs`).  Same cell + same
``optimised`` flag ⇒ bit-identical measurements on any host.

``optimised`` toggles the two hot-path optimisations as one unit: adaptive
batch sizing (:class:`repro.bcast.adaptive.AdaptiveBatcher`) changes the
simulated schedule, crypto/codec memoisation changes only wall-clock.  The
committed ``BENCH_seed.json`` is generated with ``optimised=False`` so the
default run demonstrates the gain.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.tree import OverlayTree
from repro.crypto import cache as _crypto_cache
from repro.perf.baseline import BenchReport, CellResult
from repro.runtime.environments import (
    BENCH_SCALE,
    bench_batch_delay,
    bench_costs,
)
from repro.runtime.experiment import ClientPlan, ExperimentResult, run_byzcast
from repro.workload import spec as workloads


@dataclass(frozen=True)
class BenchCell:
    """One point of the benchmark matrix."""

    name: str
    workload: str            # "local" | "global" | "mixed"
    tree: str                # "two_level" | "paper"
    clients: int
    max_batch: int = 400
    batch_delay: float = bench_batch_delay()
    warmup: float = 1.0
    duration: float = 4.0
    seed: int = 11
    #: checkpointing is always on in the bench matrix so the comparison
    #: against BENCH_seed.json bounds its overhead (and ``max_retained``
    #: proves memory stays bounded under benchmark load)
    checkpoint_interval: int = 64
    #: consensus pipeline depth; the base cells stay at 1 so they remain
    #: comparable against pre-pipeline baselines (BENCH_seed.json), the
    #: ``*_pipe4`` cells measure the depth-4 gain
    max_in_flight: int = 1
    #: name of the baseline-report cell this cell must beat (pipelined
    #: cells gate on >=1.5x that cell's throughput at <=1.1x its p95);
    #: ``None`` compares same-name cells with the regression thresholds
    baseline: Optional[str] = None

    def build_tree(self) -> OverlayTree:
        if self.tree == "two_level":
            return OverlayTree.two_level(["g1", "g2"])
        if self.tree == "paper":
            return OverlayTree.paper_tree()
        raise ValueError(f"unknown tree layout {self.tree!r}")

    def build_sampler(self, targets: Sequence[str]) -> workloads.DestinationSampler:
        if self.workload == "local":
            return workloads.local_uniform(targets)
        if self.workload == "global":
            return workloads.uniform_pairs(targets)
        if self.workload == "mixed":
            return workloads.mixed_ratio(
                workloads.local_uniform(targets),
                workloads.uniform_pairs(targets),
            )
        raise ValueError(f"unknown workload {self.workload!r}")


#: the cell the acceptance criterion (≥15% adaptive-batching gain) gates on
MIXED_CELL = "mixed_two_level"

#: minimum throughput multiple a pipelined cell must reach over its
#: depth-1 baseline cell (docs/PIPELINE.md acceptance bar)
PIPELINE_SPEEDUP = 1.5

#: the cheapest cell — what CI's bench-smoke job runs (``--quick``)
QUICK_CELL = "local_unbatched"

BENCH_MATRIX: List[BenchCell] = [
    # batch-config axis: no leader delay at all (latency-optimal baseline)
    BenchCell(name="local_unbatched", workload="local", tree="two_level",
              clients=12, batch_delay=0.0, duration=3.0),
    # workload axis on the 2-level tree, delay-batched
    BenchCell(name="local_two_level", workload="local", tree="two_level",
              clients=24),
    BenchCell(name="global_two_level", workload="global", tree="two_level",
              clients=24),
    BenchCell(name=MIXED_CELL, workload="mixed", tree="two_level",
              clients=32),
    # tree-layout axis: the paper's 3-level tree under the mixed workload
    BenchCell(name="mixed_paper_tree", workload="mixed", tree="paper",
              clients=32),
    # pipeline axis: the same scenarios with four in-flight instances and
    # higher offered load — pipelining raises the saturation point, so the
    # closed-loop client count rises with it; the gate in ``compare`` holds
    # these cells to >=1.5x the throughput of their depth-1 baseline cell
    # at no more than +10% p95 (docs/PIPELINE.md)
    BenchCell(name="global_two_level_pipe4", workload="global",
              tree="two_level", clients=48, max_in_flight=4,
              baseline="global_two_level"),
    BenchCell(name="mixed_paper_tree_pipe4", workload="mixed", tree="paper",
              clients=64, max_in_flight=4,
              baseline="mixed_paper_tree"),
]


def speedup_gates() -> Dict[str, tuple]:
    """Cross-cell gates for :func:`repro.perf.baseline.compare`.

    Every matrix cell that names a ``baseline`` cell must beat that cell's
    throughput by :data:`PIPELINE_SPEEDUP`.
    """
    return {
        cell.name: (cell.baseline, PIPELINE_SPEEDUP)
        for cell in BENCH_MATRIX
        if cell.baseline is not None
    }


def _cell_by_name(name: str) -> BenchCell:
    for cell in BENCH_MATRIX:
        if cell.name == name:
            return cell
    raise KeyError(f"no benchmark cell named {name!r}")


def run_cell(cell: BenchCell, optimised: bool = True) -> CellResult:
    """Run one matrix cell and collapse it to a :class:`CellResult`."""
    tree = cell.build_tree()
    targets = sorted(tree.targets)
    sampler = cell.build_sampler(targets)
    plans = [
        ClientPlan(name=f"bench-c{i}", sampler=sampler)
        for i in range(cell.clients)
    ]
    _crypto_cache.configure(optimised)
    _crypto_cache.clear_caches()
    started = time.perf_counter()
    try:
        result: ExperimentResult = run_byzcast(
            tree,
            plans,
            costs=bench_costs(),
            warmup=cell.warmup,
            duration=cell.duration,
            seed=cell.seed,
            max_batch=cell.max_batch,
            batch_delay=cell.batch_delay,
            adaptive_batching=optimised,
            checkpoint_interval=cell.checkpoint_interval,
            max_in_flight=cell.max_in_flight,
        )
    finally:
        _crypto_cache.configure(True)
    wall = time.perf_counter() - started
    summary = result.latency.scaled(1000.0)  # seconds -> milliseconds
    return CellResult(
        name=cell.name,
        throughput=result.throughput,
        completed=result.latency.count,
        latency_ms={
            "mean": summary.mean,
            "median": summary.median,
            "p95": summary.p95,
            "p99": summary.p99,
        },
        wall_seconds=wall,
        max_retained=result.max_retained,
    )


def run_matrix(
    rev: str,
    optimised: bool = True,
    cells: Optional[Sequence[str]] = None,
    progress=None,
) -> BenchReport:
    """Run the matrix (or a named subset) into a :class:`BenchReport`.

    Args:
        rev: revision label stored in the report (e.g. a git short hash).
        optimised: enable adaptive batching + memoisation (see module doc).
        cells: cell names to run; ``None`` runs the full matrix.
        progress: optional callable ``(cell_name, CellResult) -> None``
            invoked after each cell (the CLI prints rows as they finish).
    """
    selected = (BENCH_MATRIX if cells is None
                else [_cell_by_name(name) for name in cells])
    results: Dict[str, CellResult] = {}
    for cell in selected:
        outcome = run_cell(cell, optimised=optimised)
        results[cell.name] = outcome
        if progress is not None:
            progress(cell.name, outcome)
    return BenchReport(
        rev=rev,
        scale=BENCH_SCALE,
        optimised=optimised,
        cells=results,
    )
