"""Measured rt fast path: wire-codec cells over the real asyncio/TCP stack.

Where the sim matrix (:mod:`repro.perf.runner`) measures the *protocol*
under a calibrated cost model, these cells measure the *transport*: one
sender host broadcasting signed proposal batches to receiver hosts over
real TCP sockets through :class:`~repro.env.tcp.TcpTransport`, once per
wire codec.  The workload is the protocol's steady-state shape — a
32-request ``Propose`` whose commands carry opaque byte payloads, plus the
batch's MAC vector (:func:`repro.crypto.mac_vector`, one digest per batch,
one 16-byte tag per link) — so a cell's throughput is the full pipeline:
construct → digest → MAC → encode (once, identity-memoised) → frame →
socket → stream reassembly → decode, per receiver.

``rt_binary_mixed`` gates on ``RT_WIRE_SPEEDUP`` x ``rt_json_mixed``'s
throughput via the cross-name gate in
:func:`repro.perf.baseline.compare` — the acceptance bar for the binary
codec (docs/WIRE.md).  Cells are wall-clock: numbers vary with the host
and are *not* bit-reproducible, so per-cell regression tolerances never
apply to them (the committed baselines carry no rt cells); only the
codec-vs-codec ratio, which divides out machine speed, gates.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.crypto import KeyRegistry, cache as _crypto_cache, mac_vector
from repro.env.tcp import TcpTransport
from repro.perf.baseline import CellResult

#: throughput multiple ``rt_binary_mixed`` must reach over
#: ``rt_json_mixed`` (ISSUE 9 acceptance bar; docs/WIRE.md)
RT_WIRE_SPEEDUP = 2.0

#: the rt cell CI's bench-smoke job runs (with ``--compare``, so the
#: speedup gate is checked against the json cell from the same run)
RT_SMOKE_CELLS = ("rt_json_mixed", "rt_binary_mixed")


@dataclass(frozen=True)
class RtCell:
    """One wire-codec point of the rt transport benchmark."""

    name: str
    wire: str                      # "json" | "binary"
    receivers: int = 2
    requests_per_batch: int = 32
    #: size of the opaque command payload carried by each request
    blob_bytes: int = 2048
    warmup: float = 0.3
    duration: float = 1.2
    #: flow-control window: batches in flight before the sender yields
    window: int = 32
    #: cross-name gate, same contract as :class:`BenchCell`
    baseline: Optional[str] = None
    speedup: Optional[float] = None
    #: wall-clock cells never carry meaningful p95s — compare() must not
    #: read their latency as a regression signal
    saturated: bool = True


RT_MATRIX: List[RtCell] = [
    RtCell(name="rt_json_mixed", wire="json"),
    RtCell(name="rt_binary_mixed", wire="binary",
           baseline="rt_json_mixed", speedup=RT_WIRE_SPEEDUP),
]


class _Sink:
    """Receiver endpoint: counts deliveries, keeps the last payload alive."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.network = None
        self.delivered = 0
        self.last = None

    def receive(self, src: str, payload) -> None:
        self.delivered += 1
        self.last = payload


class _Source:
    """Sender endpoint: transports require a registered local actor."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.network = None

    def receive(self, src: str, payload) -> None:  # pragma: no cover
        pass


def _batch_factory(cell: RtCell):
    """A ``make(i) -> Propose`` closure with payload blobs precomputed.

    Blob construction is workload *generation*, not transport work, so the
    byte payloads are built once up front; every call still constructs a
    fresh ``Propose``/``Request`` object graph so the identity-memoised
    encode path is exercised honestly (one cold encode per batch, reused
    across the ``receivers`` links).
    """
    from repro.bcast.messages import Propose, Request
    from repro.crypto.signatures import Signature

    blobs = [bytes([i % 256]) * cell.blob_bytes for i in range(64)]
    nreq = cell.requests_per_batch
    sigs = [Signature(f"bench-c{j}", bytes(16)) for j in range(nreq)]

    def make(i: int):
        reqs = tuple(
            Request("g1", f"bench-c{j}", i,
                    ("put", f"key-{i}-{j}", blobs[(i + j) % 64]), sigs[j])
            for j in range(nreq))
        return Propose("g1", 0, i, reqs, "g1/r0")

    return make


def run_rt_cell(cell: RtCell, optimised: bool = True) -> CellResult:
    """Run one rt transport cell and collapse it to a :class:`CellResult`.

    Throughput is batch *deliveries* per second across all receiver links
    (a broadcast to ``receivers`` peers that all arrive counts
    ``receivers`` times).  Latency stats are zero: the cell is a
    closed-loop saturation measurement, not a service-time probe.
    """
    _crypto_cache.configure(optimised)
    _crypto_cache.clear_caches()
    try:
        throughput, delivered, wall = _run(cell)
    finally:
        _crypto_cache.configure(True)
    return CellResult(
        name=cell.name,
        throughput=throughput,
        completed=delivered,
        latency_ms={"mean": 0.0, "median": 0.0, "p95": 0.0, "p99": 0.0},
        wall_seconds=wall,
        max_retained=0,
    )


def _run(cell: RtCell):
    aloop = asyncio.new_event_loop()
    try:
        directory: Dict = {}
        sites: Dict[str, str] = {}
        sender = TcpTransport(aloop, directory=directory,
                              site_directory=sites, wire=cell.wire)
        hosts = [TcpTransport(aloop, directory=directory,
                              site_directory=sites, wire=cell.wire)
                 for _ in range(cell.receivers)]
        source = _Source("rt-send0")
        sender.register(source)
        sinks = []
        for k, host in enumerate(hosts):
            sink = _Sink(f"rt-recv{k}")
            host.register(sink)
            sinks.append(sink)
        registry = KeyRegistry()
        make = _batch_factory(cell)
        dests = [sink.name for sink in sinks]
        fanout = len(dests)

        async def drive():
            await sender.start()
            for host in hosts:
                await host.start()

            sent = 0
            i = 0

            async def pump(until: float):
                nonlocal sent, i
                limit = cell.window * fanout
                while time.perf_counter() < until:
                    batch = make(i)
                    vec = mac_vector(registry, source.name, dests, batch)
                    payload = (batch, vec)
                    for dst in dests:
                        sender.send(source.name, dst, payload)
                    sent += fanout
                    i += 1
                    if i % 8 == 0:
                        while (sum(s.delivered for s in sinks)
                               < sent - limit):
                            await asyncio.sleep(0)

            await pump(time.perf_counter() + cell.warmup)
            base = sum(s.delivered for s in sinks)
            t0 = time.perf_counter()
            await pump(t0 + cell.duration)
            # drain in-flight frames so the window doesn't clip the count
            deadline = time.perf_counter() + 2.0
            while (sum(s.delivered for s in sinks) < sent
                   and time.perf_counter() < deadline):
                await asyncio.sleep(0.005)
            wall = time.perf_counter() - t0
            delivered = sum(s.delivered for s in sinks) - base
            return delivered, wall

        delivered, wall = aloop.run_until_complete(drive())
        sender.shutdown()
        for host in hosts:
            host.shutdown()
        aloop.run_until_complete(asyncio.sleep(0.01))
        throughput = delivered / wall if wall > 0 else 0.0
        return throughput, delivered, wall
    finally:
        aloop.close()
